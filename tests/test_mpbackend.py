"""Differential gate for the real multi-process backend.

The mp backend (:mod:`repro.runtime.mpbackend` over
:mod:`repro.spmd.transport`) claims to be *observationally identical* to
the simulator -- same array values, same traffic ledger, same drift
inputs -- while actually moving every remote byte between forked worker
ranks over pipes.  This suite is that claim's gate:

* **figures** -- Fig. 1 / 12 / 16 programs under every schedule policy
  (plus unscheduled), eager and symbolic options: bit-identical values
  and an identical ``machine.stats`` snapshot vs the simulator;
* **workload sweep** -- random legal workloads (seed count scaled by
  ``REPRO_MP_SEEDS``; CI's nightly leg runs the full 0..100 acceptance
  range), eager and symbolic, all policies;
* **transport discipline** -- one-port violations, local copies on the
  wire, lying prescriptions and dead workers all raise
  :class:`~repro.errors.TransportError` instead of corrupting data;
* **plumbing** -- arena allocation, backend reuse, ``ExecutionResult.mp``
  reporting, ``repro.mp.*`` metrics, and the opt-in ``backend="mp"``
  paths through :meth:`CompilerSession.run` and the service.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro import (
    CompilerOptions,
    CompilerSession,
    ExecutionEnv,
    Machine,
    compile_program,
)
from repro.apps.workloads import random_environment, random_legal_subroutine
from repro.errors import ScheduleError, TransportError
from repro.obs import REGISTRY
from repro.runtime.mpbackend import MPBackend, MPExecutor, execute_mp
from repro.service import CompileRequest, CompileService
from repro.spmd.cost import CostModel
from repro.spmd.transport import (
    MPTransport,
    SharedArena,
    TransferRound,
    WireMessage,
    WirePart,
    fork_available,
    measured_phase_time,
)
from test_schedule import FIGURES, _run, _with_policy

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="mp transport requires the fork start method"
)

POLICIES = (None, "naive", "round-robin", "aggregate")

#: workload-sweep seed count; tier-1 keeps it small, the nightly mp
#: differential leg sets REPRO_MP_SEEDS=101 for the full acceptance range
SEEDS = int(os.environ.get("REPRO_MP_SEEDS", "12"))


@pytest.fixture(scope="module")
def backend():
    """One pool of 4 forked ranks shared by the whole module (forking per
    test would dominate the differential matrix)."""
    with MPBackend(4) as b:
        yield b


def _run_mp(backend, compiled, w):
    machine = Machine(compiled.processors)
    env = ExecutionEnv(
        conditions=dict(w["conditions"]),
        bindings=dict(w["bindings"]),
        inputs={k: v.copy() for k, v in w["inputs"].items()},
    )
    name = next(iter(compiled.subroutines))
    result = backend.execute(compiled, entry=name, machine=machine, env=env)
    values = {a: result.value(a) for a in compiled.get(name).sub.arrays}
    return values, machine.stats, result


def _assert_identical(mp, sim, context):
    mp_values, mp_stats = mp
    sim_values, sim_stats = sim
    for a in sim_values:
        assert np.array_equal(mp_values[a], sim_values[a]), (*context, a)
    assert mp_stats.snapshot() == sim_stats.snapshot(), context


# ---------------------------------------------------------------------------
# the acceptance differential: figures x policies x eager/symbolic
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p or "unscheduled")
@pytest.mark.parametrize("name", sorted(FIGURES))
def test_figures_mp_matches_simulator(backend, name, policy):
    w = FIGURES[name]
    compiled = compile_program(
        w["source"],
        bindings=w["bindings"],
        processors=4,
        options=CompilerOptions(level=3, schedule=policy),
    )
    values, stats, _ = _run_mp(backend, compiled, w)
    _assert_identical((values, stats), _run(compiled, w), (name, policy))


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p or "unscheduled")
@pytest.mark.parametrize("name", sorted(FIGURES))
def test_figures_mp_matches_simulator_symbolic(backend, name, policy):
    """Same differential through the symbolic path: compile once at
    symbolic shape, execute the instantiated artifact on both backends."""
    w = FIGURES[name]
    compiled = compile_program(
        w["source"],
        bindings=w["bindings"],
        processors=4,
        options=CompilerOptions.symbolic(level=3, schedule=policy),
    )
    values, stats, _ = _run_mp(backend, compiled, w)
    _assert_identical((values, stats), _run(compiled, w), (name, policy, "symbolic"))


@pytest.mark.parametrize("mode", ["eager", "symbolic"])
def test_workload_seeds_mp_matches_simulator(backend, mode):
    """Random legal workloads, every policy: bit-identical values and an
    identical traffic ledger between the mp backend and the simulator."""
    for seed in range(SEEDS):
        rng = np.random.default_rng(seed)
        program = random_legal_subroutine(rng, n_arrays=2, length=5, depth=1)
        conditions, inputs = random_environment(rng, n_arrays=2)
        w = dict(bindings={}, conditions=conditions, inputs=inputs)
        for policy in POLICIES:
            if mode == "symbolic":
                options = CompilerOptions.symbolic(level=3, schedule=policy)
            else:
                options = CompilerOptions(level=3, schedule=policy)
            compiled = compile_program(program, processors=4, options=options)
            values, stats, _ = _run_mp(backend, compiled, w)
            _assert_identical(
                (values, stats), _run(compiled, w), (seed, policy, mode)
            )


def test_mp_runs_with_fused_simulator_reference(backend):
    """The simulator reference may replay fused loop traces (PR 9); the mp
    backend always interprets -- and the ledgers still agree, because
    fusion is semantics-preserving."""
    w = FIGURES["fig16"]
    compiled = compile_program(
        w["source"],
        bindings=w["bindings"],
        processors=4,
        options=CompilerOptions(level=3, schedule="round-robin"),
    )
    sim_values, sim_stats = _run(compiled, w)  # fuse_loops defaults on
    values, stats, result = _run_mp(backend, compiled, w)
    assert result.fusion.replays == 0  # the transport carried every message
    _assert_identical((values, stats), (sim_values, sim_stats), ("fig16", "fused-ref"))


# ---------------------------------------------------------------------------
# the measured report and the obs surface
# ---------------------------------------------------------------------------


def test_execution_result_carries_mp_report(backend):
    w = FIGURES["fig16"]
    compiled = compile_program(
        w["source"],
        bindings=w["bindings"],
        processors=4,
        options=CompilerOptions(level=3, schedule="round-robin"),
    )
    _, stats, result = _run_mp(backend, compiled, w)
    report = result.mp
    assert report is not None and report.nprocs == 4
    # the transport carried exactly the ledger's remote traffic
    assert report.messages == stats.messages
    assert report.bytes_moved == stats.bytes
    assert report.exchanges > 0 and report.phases >= report.exchanges
    assert len(report.phase_wall_seconds) == report.phases
    assert len(report.phase_port_seconds) == report.phases
    assert report.wall_seconds > 0.0 and report.port_seconds > 0.0
    assert report.measured_makespan == report.port_seconds
    snap = report.snapshot()
    assert snap["messages"] == report.messages
    assert snap["nprocs"] == 4
    ratio = report.calibration_ratio(1e-3)
    assert ratio > 0.0 and np.isfinite(ratio)
    assert np.isnan(report.calibration_ratio(0.0))


def test_simulator_result_has_no_mp_report():
    w = FIGURES["fig16"]
    compiled = compile_program(
        w["source"], bindings=w["bindings"], processors=4,
        options=CompilerOptions(level=3),
    )
    machine = Machine(compiled.processors)
    env = ExecutionEnv(
        conditions={}, bindings=dict(w["bindings"]),
        inputs={k: v.copy() for k, v in w["inputs"].items()},
    )
    from repro.runtime.executor import Executor

    result = Executor(compiled, machine, env).run(next(iter(compiled.subroutines)))
    assert result.mp is None


def _total(snapshot: dict, name: str) -> float:
    return sum(
        m["value"]
        for m in snapshot["metrics"]
        if m["name"] == name and "value" in m
    )


def test_mp_metrics_published(backend):
    before = REGISTRY.snapshot()
    w = FIGURES["fig1"]
    compiled = compile_program(
        w["source"], bindings=w["bindings"], processors=4,
        options=CompilerOptions(level=3, schedule="aggregate"),
    )
    _, stats, result = _run_mp(backend, compiled, w)
    after = REGISTRY.snapshot()
    for name, want in (
        ("repro.mp.exchanges", result.mp.exchanges),
        ("repro.mp.messages", result.mp.messages),
        ("repro.mp.bytes_moved", result.mp.bytes_moved),
    ):
        assert _total(after, name) - _total(before, name) == want, name
    assert _total(after, "repro.mp.workers") == 4  # the module backend's pool


# ---------------------------------------------------------------------------
# the transport itself: arenas, wire rounds, discipline
# ---------------------------------------------------------------------------


def test_arena_allocates_aligned_and_coalesces():
    arena = SharedArena(1 << 12)
    a = arena.allocate(100)
    b = arena.allocate(100)
    assert a % 64 == 0 and b % 64 == 0 and b >= a + 100
    free_before = arena.free_bytes()
    arena.release(a, 100)
    arena.release(b, 100)
    assert arena.free_bytes() > free_before
    # released neighbours coalesce: the full arena is one extent again
    c = arena.allocate(1 << 12)
    assert c == 0
    arena.release(c, 1 << 12)
    arena.close()


def test_arena_exhaustion_raises():
    arena = SharedArena(1 << 10)
    with pytest.raises(TransportError, match="arena"):
        arena.allocate(1 << 20)
    arena.close()
    with pytest.raises(TransportError):
        SharedArena(0)


def test_measured_phase_time_mirrors_cost_model():
    """If the measured per-message costs equal the modeled ones, the
    composed phase durations must agree exactly -- same formula."""
    cost = CostModel()
    msgs = [(0, 1, 1000), (2, 3, 4000), (0, 3, 2000)]
    measured = [(s, d, cost.message_cost(n)) for s, d, n in msgs]
    for contended in (False, True):
        assert measured_phase_time(measured, contended) == pytest.approx(
            cost.phase_time(msgs, contended=contended)
        )
    assert measured_phase_time([], True) == 0.0


def test_transport_moves_prescribed_bytes():
    """A hand-built round moves exactly the prescribed rectangle between
    two ranks' arenas (parent and workers share the mapping)."""
    with MPTransport(2, arena_bytes=1 << 16) as t:
        src_off, src = t.place_block(0, (4, 4), np.float64)
        dst_off, dst = t.place_block(1, (4, 4), np.float64)
        src[...] = np.arange(16, dtype=np.float64).reshape(4, 4)
        dst.fill(-1.0)
        ix = np.ix_([1, 2], [0, 3])
        part = WirePart(
            src_block=(src_off, (4, 4), "<f8"),
            dst_block=(dst_off, (4, 4), "<f8"),
            src_ix=ix,
            dst_ix=ix,
            shape=(2, 2),
            nbytes=4 * 8,
        )
        report = t.exchange(
            (TransferRound((WireMessage(0, 1, (part,)),), contended=False),)
        )
        assert report.messages == 1 and report.bytes == 32
        assert np.array_equal(dst[ix], src[ix])
        untouched = dst == -1.0
        assert untouched.sum() == 12  # nothing outside the rectangle moved
        t.release_block(0, src_off, src.nbytes)
        t.release_block(1, dst_off, dst.nbytes)


def _unit_part(t, src_rank, dst_rank):
    src_off, src = t.place_block(src_rank, (2,), np.float64)
    dst_off, dst = t.place_block(dst_rank, (2,), np.float64)
    ix = (np.array([0, 1]),)
    return WirePart(
        src_block=(src_off, (2,), "<f8"),
        dst_block=(dst_off, (2,), "<f8"),
        src_ix=ix,
        dst_ix=ix,
        shape=(2,),
        nbytes=16,
    )


def test_contention_free_round_rejects_one_port_violation():
    """The transport applies the same one-port authority Machine.run_phase
    does, so a violating round raises the same ScheduleError."""
    with MPTransport(3, arena_bytes=1 << 14) as t:
        messages = (
            WireMessage(0, 2, (_unit_part(t, 0, 2),)),
            WireMessage(1, 2, (_unit_part(t, 1, 2),)),  # rank 2 receives twice
        )
        with pytest.raises(ScheduleError, match="receives twice"):
            t.exchange((TransferRound(messages, contended=False),))
        # the same pair set is legal when declared contended
        report = t.exchange((TransferRound(messages, contended=True),))
        assert report.messages == 2


def test_local_copy_on_the_wire_is_rejected():
    with MPTransport(2, arena_bytes=1 << 14) as t:
        part = _unit_part(t, 0, 0)
        with pytest.raises(TransportError, match="local copy"):
            t.exchange((TransferRound((WireMessage(0, 0, (part,)),), contended=True),))


def test_worker_failure_surfaces_as_transport_error():
    """A prescription whose scatter cannot apply (payload shape does not
    match the destination rectangle) fails in the worker and surfaces as
    a TransportError, not as silent corruption."""
    with MPTransport(2, arena_bytes=1 << 14) as t:
        good = _unit_part(t, 0, 1)
        bad = WirePart(
            src_block=good.src_block,
            dst_block=good.dst_block,
            src_ix=good.src_ix,
            dst_ix=(np.array([0]),),  # 1 slot for a 2-element payload
            shape=(2,),
            nbytes=16,
        )
        with pytest.raises(TransportError, match="rank 1 failed"):
            t.exchange((TransferRound((WireMessage(0, 1, (bad,)),), contended=True),))


def test_dead_worker_detected():
    t = MPTransport(2, arena_bytes=1 << 14)
    t.start()
    try:
        part = _unit_part(t, 0, 1)
        os.kill(t._procs[1].pid, signal.SIGKILL)
        t._procs[1].join(timeout=5.0)
        with pytest.raises(TransportError):
            t.exchange((TransferRound((WireMessage(0, 1, (part,)),), contended=True),))
    finally:
        t.close()


def test_closed_transport_rejects_exchanges():
    t = MPTransport(2, arena_bytes=1 << 14)
    with pytest.raises(TransportError, match="not running"):
        t.exchange(())
    t.start()
    t.close()
    with pytest.raises(TransportError, match="not running"):
        t.exchange(())


def test_transport_rejects_bad_rank_count():
    with pytest.raises(TransportError):
        MPTransport(0)


# ---------------------------------------------------------------------------
# executor / backend plumbing
# ---------------------------------------------------------------------------


def test_mpexecutor_requires_matching_transport(backend):
    w = FIGURES["fig16"]
    compiled = compile_program(
        w["source"], bindings=w["bindings"], processors=4,
        options=CompilerOptions(level=3),
    )
    with pytest.raises(TransportError, match="requires"):
        MPExecutor(compiled, Machine(compiled.processors))
    two = compile_program(
        w["source"], bindings=w["bindings"], processors=2,
        options=CompilerOptions(level=3),
    )
    with pytest.raises(TransportError, match="worker rank"):
        MPExecutor(two, Machine(two.processors), transport=backend.transport)


def test_backend_reuse_and_transient_helper():
    """One backend survives many runs; execute_mp works standalone and
    its result's values stay readable after the workers are gone."""
    w = FIGURES["fig1"]
    compiled = compile_program(
        w["source"], bindings=w["bindings"], processors=4,
        options=CompilerOptions(level=3, schedule="naive"),
    )
    ref_values, _ = _run(compiled, w)
    env = lambda: ExecutionEnv(  # noqa: E731 - tiny local factory
        conditions={}, bindings=dict(w["bindings"]),
        inputs={k: v.copy() for k, v in w["inputs"].items()},
    )
    with MPBackend(4) as b:
        r1 = b.execute(compiled, env=env())
        r2 = b.execute(compiled, env=env())
        for a in ref_values:
            assert np.array_equal(r1.value(a), ref_values[a])
            assert np.array_equal(r2.value(a), ref_values[a])
    r3 = execute_mp(compiled, env=env())
    for a in ref_values:
        assert np.array_equal(r3.value(a), ref_values[a])  # post-close reads


# ---------------------------------------------------------------------------
# the opt-in front doors: session.run and the service
# ---------------------------------------------------------------------------


def test_session_run_backend_mp_matches_sim():
    w = FIGURES["fig12-then"]
    session = CompilerSession(options=CompilerOptions(level=3, schedule="round-robin"))
    kw = dict(
        bindings=dict(w["bindings"]),
        conditions=dict(w["conditions"]),
        inputs={k: v.copy() for k, v in w["inputs"].items()},
        processors=4,
    )
    sim = session.run(w["source"], **kw)
    mp = session.run(w["source"], backend="mp", **kw)
    assert mp.mp is not None and mp.mp.nprocs == 4
    for a in ("a", "b", "c"):
        assert np.array_equal(mp.value(a), sim.value(a)), a
    with pytest.raises(ValueError, match="unknown backend"):
        session.run(w["source"], backend="gpu", **kw)


def test_service_backend_mp_round_trip():
    w = FIGURES["fig16"]
    with CompileService(processors=4, workers=1) as svc:
        req = dict(
            source=w["source"],
            bindings=dict(w["bindings"]),
            inputs={k: v.copy() for k, v in w["inputs"].items()},
            options=CompilerOptions(level=3, schedule="aggregate"),
        )
        sim = svc.submit(CompileRequest(**req)).result()
        mp = svc.submit(CompileRequest(backend="mp", **req)).result()
        bad = svc.submit(CompileRequest(backend="quantum", **req)).result()
    assert sim.error is None and mp.error is None
    assert mp.result.mp is not None and mp.result.mp.messages > 0
    assert np.array_equal(mp.result.value("a"), sim.result.value("a"))
    assert isinstance(bad.error, ValueError)  # contained, not leaked
