"""Optimization soundness on randomly generated programs.

The strongest property in the suite: for ANY legal program, runtime inputs
and branch outcomes,

* naive (level 0) and fully optimized (level 3) executions produce
  bit-identical final values for every array, and
* the optimized execution never moves more bytes or messages.

This is the executable form of the paper's Theorem 1 ("the computed
remappings are those and only those that are needed") plus the correctness
of live-copy reuse and motion.
"""

from __future__ import annotations

import os

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

# The randomized CI leg must cover the ISSUE's acceptance bar (>= 500
# generated programs for the monotonicity property); the deterministic
# default keeps local runs fast.  @settings overrides the profile, so the
# example budget has to be profile-aware here.
RANDOM_PROFILE = os.environ.get("HYPOTHESIS_PROFILE") == "random"
MONOTONE_EXAMPLES = 500 if RANDOM_PROFILE else 25

from repro import CompilerOptions, ExecutionEnv, Executor, Machine, compile_program
from repro.apps.workloads import (
    chain_subroutine,
    loopy_subroutine,
    random_environment,
    random_legal_subroutine,
)


def execute(program, level, conditions, inputs, bindings=None):
    compiled = compile_program(
        program, processors=4, options=CompilerOptions(level=level)
    )
    machine = Machine(compiled.processors)
    env = ExecutionEnv(
        conditions=dict(conditions),
        inputs={k: v.copy() for k, v in inputs.items()},
        bindings=bindings or {},
        check_invariants=True,
    )
    name = next(iter(compiled.subroutines))
    result = Executor(compiled, machine, env).run(name)
    values = {a: result.value(a) for a in compiled.get(name).sub.arrays}
    return values, machine.stats


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000))
def test_prop_optimizations_preserve_semantics(seed):
    rng = np.random.default_rng(seed)
    program = random_legal_subroutine(rng, n_arrays=3, length=6, depth=2)
    conditions, inputs = random_environment(rng, n_arrays=3)

    v0, s0 = execute(program, 0, conditions, inputs)
    v3, s3 = execute(program, 3, conditions, inputs)

    for a in v0:
        assert np.array_equal(v0[a], v3[a]), f"array {a} diverged (seed {seed})"
    assert s3.bytes <= s0.bytes, f"optimized moved more bytes (seed {seed})"
    # NOTE: the *message count* is deliberately not asserted: a direct
    # remapping (after removal of an intermediate hop) can take more
    # point-to-point messages than the two hops combined while moving
    # strictly fewer bytes -- message counts are not monotone


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), level=st.sampled_from([1, 2]))
def test_prop_intermediate_levels_also_sound(seed, level):
    rng = np.random.default_rng(seed)
    program = random_legal_subroutine(rng, n_arrays=2, length=5, depth=1)
    conditions, inputs = random_environment(rng, n_arrays=2)
    v0, s0 = execute(program, 0, conditions, inputs)
    vx, sx = execute(program, level, conditions, inputs)
    for a in v0:
        assert np.array_equal(v0[a], vx[a])
    assert sx.bytes <= s0.bytes


@settings(max_examples=20, deadline=None)
@given(m=st.integers(1, 8), p=st.integers(1, 4))
def test_prop_chain_programs_sound(m, p):
    program = chain_subroutine(m, p)
    inputs = {f"a{i}": np.arange(16.0) + i for i in range(p)}
    v0, s0 = execute(program, 0, {}, inputs)
    v3, s3 = execute(program, 3, {}, inputs)
    for a in v0:
        assert np.array_equal(v0[a], v3[a])
    assert s3.bytes <= s0.bytes


@settings(max_examples=15, deadline=None)
@given(m=st.integers(1, 3), t=st.integers(0, 4))
def test_prop_loopy_programs_sound(m, t):
    program = loopy_subroutine(m)
    inputs = {"a": np.arange(16.0)}
    v0, s0 = execute(program, 0, {}, inputs, bindings={"t": t})
    v3, s3 = execute(program, 3, {}, inputs, bindings={"t": t})
    assert np.array_equal(v0["a"], v3["a"])
    assert s3.bytes <= s0.bytes


@settings(
    max_examples=MONOTONE_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000))
def test_prop_monotone_levels(seed):
    """Traffic is monotonically non-increasing with the optimization level.

    Level 3 (motion) used to be a pure legality heuristic and could *lose*
    to lower levels on adversarial programs (the seed-2558 counter-example:
    sinking a zero-trip loop's trailing remapping made it unconditional).
    The cost guard now prices every candidate sink against the unmoved
    placement over all branch/trip scenarios and rejects any that could pay
    more, so full monotonicity (level 3 <= level 2 <= level 1 <= level 0)
    is enforced by construction -- verified here on arbitrary seeds and
    exhaustively on seeds 0..10000 when this property landed.
    """
    rng = np.random.default_rng(seed)
    program = random_legal_subroutine(rng, n_arrays=2, length=5, depth=1)
    conditions, inputs = random_environment(rng, n_arrays=2)
    byte_counts = []
    for level in (0, 1, 2, 3):
        _, stats = execute(program, level, conditions, inputs)
        byte_counts.append(stats.bytes)
    assert byte_counts[1] <= byte_counts[0]
    assert byte_counts[2] <= byte_counts[1]
    assert byte_counts[3] <= byte_counts[2]


def test_generated_programs_have_remappings():
    """The generator must actually produce interesting programs."""
    rng = np.random.default_rng(123)
    remap_counts = []
    for _ in range(10):
        program = random_legal_subroutine(rng)
        compiled = compile_program(program, processors=4)
        sub = next(iter(compiled.subroutines.values()))
        remap_counts.append(sub.graph.remap_count())
    assert max(remap_counts) >= 3
