"""Tests for the G_R dataflow optimizations (paper Sec. 4, Appendix C/D)."""

from __future__ import annotations


from repro.ir.cfg import NodeKind, build_cfg
from repro.ir.effects import Use
from repro.lang import parse_program, parse_subroutine, resolve_program
from repro.lang.ast_nodes import Do, Program, Redistribute
from repro.lang.printer import print_program
from repro.mapping import ProcessorArrangement
from repro.remap import (
    build_remapping_graph,
    compute_live_copies,
    hoist_loop_invariant_remaps,
    remove_useless_remappings,
)
from repro.remap.livecopies import max_live_copies

P4 = ProcessorArrangement("P", (4,))


def construct(src: str, bindings=None, procs=P4, sub_name: str | None = None):
    prog = resolve_program(
        parse_program(src), bindings=bindings or {"n": 16}, default_processors=procs
    )
    name = sub_name or next(iter(prog.subroutines))
    return build_remapping_graph(build_cfg(prog.get(name)), prog)


# ---------------------------------------------------------------------------
# Appendix C: useless remapping removal
# ---------------------------------------------------------------------------


def test_fig2_useless_remaps_removed():
    """Figure 2: C is remapped away and back without any use: both removed."""
    src = """
subroutine s()
  integer n
  real B(n, n), C(n, n)
!hpf$ template T(n, n)
!hpf$ align B with T
!hpf$ align C(i, j) with T(j, i)
!hpf$ dynamic B, C
!hpf$ distribute T(block, *)
  compute reads B, C
!hpf$ redistribute T(cyclic, *)
  compute reads B
!hpf$ redistribute T(block, *)
  compute reads B, C
end
"""
    res = construct(src)
    g = res.graph
    report = remove_useless_remappings(g)
    removed_arrays = [a for (_, a) in report.removed]
    # C's first remapping is useless (unused until remapped back)
    assert "c" in removed_arrays
    remaps = sorted(
        (v for v in g.vertices.values() if v.kind is NodeKind.REMAP),
        key=lambda v: v.cfg_id,
    )
    assert "c" in remaps[0].removed
    # after removal, the second remapping of C is reached by the ORIGINAL copy
    assert remaps[1].R["c"] == {0}
    # ... and since it restores mapping 0 from copy 0, the runtime will skip it
    assert remaps[1].L["c"] == 0
    # B is read in between: kept
    assert "b" not in remaps[0].removed


def test_fig3_only_used_arrays_keep_remappings():
    """Figure 3: five aligned arrays, only A and D used after redistribution."""
    src = """
subroutine s()
  integer n
  real A(n), B(n), C(n), D(n), E(n)
!hpf$ template T(n)
!hpf$ align with T :: A, B, C, D, E
!hpf$ dynamic A, B, C, D, E
!hpf$ distribute T(block)
  compute reads A, B, C, D, E
!hpf$ redistribute T(cyclic)
  compute reads A, D
end
"""
    res = construct(src)
    g = res.graph
    remap = next(v for v in g.vertices.values() if v.kind is NodeKind.REMAP)
    assert remap.S == {"a", "b", "c", "d", "e"}
    report = remove_useless_remappings(g)
    kept = {a for (_, a) in report.kept if g.vertices[_].kind is NodeKind.REMAP}
    assert kept == {"a", "d"}
    assert remap.removed == {"b", "c", "e"}


def test_fig12_used_version_sets():
    """Figure 12: A used with all four mappings, B only {0,1}, C only {2,3}."""
    src = """
subroutine remap(A, m)
  integer m, n, p
  real A(n,n), B(n,n), C(n,n)
  intent inout A
!hpf$ align with A :: B, C
!hpf$ dynamic A, B, C
!hpf$ distribute A(block, *)
  compute "init" writes B reads A
  if c1 then
!hpf$   redistribute A(cyclic, *)
    compute writes A, p reads A, B
  else
!hpf$   redistribute A(block, block)
    compute writes p reads A
  endif
  do i = 1, m
!hpf$   redistribute A(*, block)
    compute writes C reads A
!hpf$   redistribute A(block, *)
    compute writes A reads A, C
  enddo
end
"""
    res = construct(src)
    g = res.graph
    remove_useless_remappings(g)
    assert g.used_versions("a") == {0, 1, 2, 3}
    assert g.used_versions("b") == {0, 1}
    assert g.used_versions("c") == {0, 3}  # used at loop mappings only


def test_removal_transitive_closure_chain():
    """remap -> remap -> remap with no uses in between: the reaching set of
    the last vertex must transitively reach back to the original copy."""
    src = """
subroutine s()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute reads A
!hpf$ redistribute A(cyclic)
!hpf$ redistribute A(cyclic(2))
!hpf$ redistribute A(block(8))
  compute reads A
end
"""
    res = construct(src)
    g = res.graph
    remove_useless_remappings(g)
    remaps = sorted(
        (v for v in g.vertices.values() if v.kind is NodeKind.REMAP),
        key=lambda v: v.cfg_id,
    )
    assert "a" in remaps[0].removed
    assert "a" in remaps[1].removed
    assert "a" not in remaps[2].removed
    # direct remapping: block -> block(8), skipping the two dead mappings
    assert remaps[2].R["a"] == {0}


def test_fig1_direct_remapping_after_removal():
    """Figure 1: realign then redistribute; the intermediate mapping is unused,
    so after removal A goes directly from the initial to the final mapping."""
    src = """
subroutine s()
  integer n
  real A(n, n), B(n, n)
!hpf$ align with B :: A
!hpf$ dynamic A, B
!hpf$ distribute B(block, *)
  compute reads A, B
!hpf$ realign A(i, j) with B(j, i)
!hpf$ redistribute B(cyclic, *)
  compute reads A, B
end
"""
    res = construct(src)
    g = res.graph
    remove_useless_remappings(g)
    remaps = sorted(
        (v for v in g.vertices.values() if v.kind is NodeKind.REMAP),
        key=lambda v: v.cfg_id,
    )
    realign_v, redist_v = remaps
    # the realign's A copy is unused before the redistribute: removed
    assert "a" in realign_v.removed
    # so the redistribute receives A directly from its initial copy
    assert redist_v.R["a"] == {0}
    assert redist_v.L["a"] is not None and redist_v.L["a"] != 0


def test_fig4_interprocedural_removal():
    """Figure 4: restores between consecutive calls are removed."""
    src = """
subroutine foo(X)
  integer n
  real X(n)
  intent in X
!hpf$ distribute X(cyclic)
end

subroutine bla(X)
  integer n
  real X(n)
  intent in X
!hpf$ distribute X(cyclic)
end

subroutine main()
  integer n
  real Y(n)
!hpf$ dynamic Y
!hpf$ distribute Y(block)
  compute writes Y
  call foo(Y)
  call foo(Y)
  call bla(Y)
  compute reads Y
end
"""
    res = construct(src, sub_name="main")
    g = res.graph
    report = remove_useless_remappings(g)
    vas = sorted(
        (v for v in g.vertices.values() if v.kind is NodeKind.CALL_AFTER),
        key=lambda v: v.cfg_id,
    )
    assert "y" in vas[0].removed
    assert "y" in vas[1].removed
    assert "y" not in vas[2].removed
    # the second foo call's v_b is now reached by foo's own dummy mapping:
    # runtime will skip the copy entirely
    vbs = sorted(
        (v for v in g.vertices.values() if v.kind is NodeKind.CALL_BEFORE),
        key=lambda v: v.cfg_id,
    )
    assert vbs[1].R["y"] == {vbs[0].L["y"]}


def test_removal_keeps_exit_restore_of_inout_dummy():
    src = """
subroutine s(A)
  integer n
  real A(n)
  intent inout A
!hpf$ dynamic A
!hpf$ distribute A(block)
!hpf$ redistribute A(cyclic)
  compute writes A
end
"""
    res = construct(src)
    g = res.graph
    remove_useless_remappings(g)
    v_e = g.vertices[res.cfg.exit]
    # A modified and exported: the exit restore must stay
    assert "a" in v_e.S and "a" not in v_e.removed
    assert v_e.U["a"] is Use.W


def test_removal_drops_exit_restore_of_in_dummy():
    src = """
subroutine s(A)
  integer n
  real A(n)
  intent in A
!hpf$ dynamic A
!hpf$ distribute A(block)
!hpf$ redistribute A(cyclic)
  compute reads A
end
"""
    res = construct(src)
    g = res.graph
    remove_useless_remappings(g)
    v_e = g.vertices[res.cfg.exit]
    # intent(in): nothing is exported, the exit restore is useless
    assert "a" in v_e.removed


# ---------------------------------------------------------------------------
# Appendix D: dynamic live copies
# ---------------------------------------------------------------------------

FIG13 = """
subroutine s()
  integer n
  real A(n, n)
!hpf$ dynamic A
!hpf$ distribute A(block, *)
  compute reads A
  if c then
!hpf$   redistribute A(cyclic, *)
    compute writes A
  else
!hpf$   redistribute A(cyclic(2), *)
    compute reads A
  endif
!hpf$ redistribute A(block, *)
  compute reads A
end
"""


def test_fig13_live_copy_sets():
    res = construct(FIG13)
    g = res.graph
    remove_useless_remappings(g)
    compute_live_copies(g)
    remaps = sorted(
        (v for v in g.vertices.values() if v.kind is NodeKind.REMAP),
        key=lambda v: v.cfg_id,
    )
    v1, v2, v3 = remaps
    # after v2 (else branch, A only read), the original copy 0 is worth
    # keeping: the final remapping returns to mapping 0
    assert 0 in v2.M["a"]
    # after v1 (then branch, A written), older copies would be stale anyway,
    # but M still records what may be useful *from here on*: v1's U is W, so
    # nothing propagates backward through it beyond its own leaving copy
    assert v1.M["a"] == {v1.L["a"]}
    # after the final remapping nothing else is worth keeping
    assert v3.M["a"] == {v3.L["a"]}


def test_fig13_keeping_copy_0_is_flow_dependent():
    """Paper: 'depending on the execution path, copy A_0 may reach remapping
    3 live or not' -- the static M keeps it, the runtime flags decide."""
    res = construct(FIG13)
    g = res.graph
    remove_useless_remappings(g)
    compute_live_copies(g)
    v_0_vertices = [
        v
        for v in g.vertices.values()
        if v.kind in (NodeKind.ENTRY,) and "a" in v.S
    ]
    assert len(v_0_vertices) == 1
    # at the producer, copy 0 is worth keeping (it may be reused at the end)
    assert 0 in v_0_vertices[0].M["a"]


def test_live_copies_not_kept_when_never_reused():
    src = """
subroutine s()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute reads A
!hpf$ redistribute A(cyclic)
  compute reads A
end
"""
    res = construct(src)
    g = res.graph
    remove_useless_remappings(g)
    compute_live_copies(g)
    remap = next(v for v in g.vertices.values() if v.kind is NodeKind.REMAP)
    # no later remapping returns to copy 0: keeping it buys nothing
    assert remap.M["a"] == {remap.L["a"]}
    # at the producer v_0 the backward propagation vacuously includes the
    # future copy 1 (it is not live yet, so nothing is actually kept)
    assert max_live_copies(g, "a") <= 2


def test_live_copies_through_loop():
    """A loop alternating between two mappings keeps both copies live when the
    array is only read inside."""
    src = """
subroutine s(m)
  integer n, m
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute writes A
  do i = 1, m
!hpf$   redistribute A(cyclic)
    compute reads A
!hpf$   redistribute A(block)
    compute reads A
  enddo
end
"""
    res = construct(src, bindings={"n": 16, "m": 4})
    g = res.graph
    remove_useless_remappings(g)
    compute_live_copies(g)
    remaps = sorted(
        (v for v in g.vertices.values() if v.kind is NodeKind.REMAP),
        key=lambda v: v.cfg_id,
    )
    # at the loop-top remapping both copies are worth keeping: after the
    # first iteration neither remapping communicates again
    assert remaps[0].M["a"] == {0, 1}
    assert remaps[1].M["a"] == {0, 1}


# ---------------------------------------------------------------------------
# loop-invariant remapping motion (Fig. 16/17)
# ---------------------------------------------------------------------------

FIG16 = """
subroutine s(t)
  integer n, t
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute reads A
  do i = 1, t
!hpf$   redistribute A(cyclic)
    compute reads A
!hpf$   redistribute A(block)
  enddo
  compute reads A
end
"""


def test_fig16_trailing_remap_sunk():
    sub = parse_subroutine(FIG16)
    new_sub, report = hoist_loop_invariant_remaps(sub)
    assert report.count == 1
    # the loop body now holds one redistribute; another follows the loop
    loop = next(s for s in new_sub.body.stmts if isinstance(s, Do))
    body_remaps = [s for s in loop.body.stmts if isinstance(s, Redistribute)]
    assert len(body_remaps) == 1
    after = new_sub.body.stmts[new_sub.body.stmts.index(loop) + 1]
    assert isinstance(after, Redistribute)
    assert after.formats[0].kind == "block"


def test_fig16_motion_preserves_wellformedness():
    sub = parse_subroutine(FIG16)
    new_sub, _ = hoist_loop_invariant_remaps(sub)
    prog = resolve_program(
        Program((new_sub,)), bindings={"n": 16, "t": 3}, default_processors=P4
    )
    res = build_remapping_graph(build_cfg(prog.get("s")), prog)
    assert res.graph.remap_count() > 0


def test_motion_blocked_by_reference_before_leading_remap():
    src = """
subroutine s(t)
  integer n, t
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  do i = 1, t
    compute reads A
!hpf$   redistribute A(cyclic)
    compute reads A
!hpf$   redistribute A(block)
  enddo
end
"""
    _, report = hoist_loop_invariant_remaps(parse_subroutine(src))
    # A is referenced (in block mapping) before the leading remapping:
    # sinking the trailing restore would break that reference
    assert report.count == 0


def test_motion_respects_alignment_family():
    src = """
subroutine s(t)
  integer n, t
  real A(n), B(n)
!hpf$ align with A :: B
!hpf$ dynamic A, B
!hpf$ distribute A(block)
  do i = 1, t
    compute reads B
!hpf$   redistribute A(cyclic)
    compute reads A
!hpf$   redistribute A(block)
  enddo
end
"""
    _, report = hoist_loop_invariant_remaps(parse_subroutine(src))
    # B is aligned with A and referenced before the leading remapping
    assert report.count == 0


def test_motion_skipped_when_realign_present():
    src = """
subroutine s(t)
  integer n, t
  real A(n, n), B(n, n)
!hpf$ align with B :: A
!hpf$ dynamic A, B
!hpf$ distribute B(block, *)
  do i = 1, t
!hpf$   realign A(i, j) with B(j, i)
!hpf$   redistribute B(cyclic, *)
    compute reads A
!hpf$   redistribute B(block, *)
  enddo
end
"""
    _, report = hoist_loop_invariant_remaps(parse_subroutine(src))
    assert report.count == 0


def test_motion_nested_loops():
    src = """
subroutine s(t)
  integer n, t
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  do j = 1, t
    do i = 1, t
!hpf$     redistribute A(cyclic)
      compute reads A
!hpf$     redistribute A(block)
    enddo
  enddo
end
"""
    sub, report = hoist_loop_invariant_remaps(parse_subroutine(src))
    # inner sink; the sunk statement becomes the outer body's tail, where the
    # same rule applies again
    assert report.count == 2
    outer = next(s for s in sub.body.stmts if isinstance(s, Do))
    assert isinstance(sub.body.stmts[-1], Redistribute)
    inner = next(s for s in outer.body.stmts if isinstance(s, Do))
    assert len([s for s in inner.body.stmts if isinstance(s, Redistribute)]) == 1


def test_motion_roundtrips_through_printer():
    sub, _ = hoist_loop_invariant_remaps(parse_subroutine(FIG16))
    text = print_program(Program((sub,)))
    assert parse_program(text) == Program((sub,))


# ---------------------------------------------------------------------------
# kill directive (Sec. 4.3)
# ---------------------------------------------------------------------------


def test_kill_marks_next_remap_dead_source():
    src = """
subroutine s()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute reads A
!hpf$ kill A
!hpf$ redistribute A(cyclic)
  compute writes A
end
"""
    res = construct(src)
    remap = next(
        v for v in res.graph.vertices.values() if v.kind is NodeKind.REMAP
    )
    # values are dead across the remapping: no communication needed
    assert "a" in remap.dead_source
    # but the copy itself is still used (written) afterwards: not removed
    remove_useless_remappings(res.graph)
    assert "a" not in remap.removed


def test_kill_on_one_path_only_is_not_dead():
    src = """
subroutine s()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute reads A
  if c then
!hpf$   kill A
  endif
!hpf$ redistribute A(cyclic)
  compute reads A
end
"""
    res = construct(src)
    remap = next(
        v for v in res.graph.vertices.values() if v.kind is NodeKind.REMAP
    )
    # dead on the then path only: must-analysis says live
    assert "a" not in remap.dead_source


def test_write_after_kill_revives():
    src = """
subroutine s()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
!hpf$ kill A
  compute defines A
!hpf$ redistribute A(cyclic)
  compute reads A
end
"""
    res = construct(src)
    remap = next(
        v for v in res.graph.vertices.values() if v.kind is NodeKind.REMAP
    )
    assert "a" not in remap.dead_source
