"""Unit and property tests for the N/D/R/W use-information lattice."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.effects import (
    Use,
    intent_call_effect,
    intent_entry_exit_effects,
    join,
    join_all,
    seq,
    stmt_effect,
)

uses = st.sampled_from(list(Use))


# ---------------------------------------------------------------------------
# join: the may lattice (N bottom, W top, D and R incomparable)
# ---------------------------------------------------------------------------


def test_join_table():
    assert join(Use.N, Use.N) is Use.N
    assert join(Use.N, Use.D) is Use.D
    assert join(Use.N, Use.R) is Use.R
    assert join(Use.N, Use.W) is Use.W
    assert join(Use.D, Use.D) is Use.D
    assert join(Use.R, Use.R) is Use.R
    # the deliberate deviation from the paper's max-order (see DESIGN.md):
    # one path redefines, the other reads -> the copy is both needed and
    # possibly stale for siblings
    assert join(Use.D, Use.R) is Use.W
    assert join(Use.R, Use.D) is Use.W
    assert join(Use.W, Use.D) is Use.W


@given(uses)
def test_prop_join_identity(u):
    assert join(Use.N, u) is u
    assert join(u, Use.N) is u


@given(uses)
def test_prop_join_idempotent(u):
    assert join(u, u) is u


@given(uses, uses)
def test_prop_join_commutative(a, b):
    assert join(a, b) is join(b, a)


@given(uses, uses, uses)
def test_prop_join_associative(a, b, c):
    assert join(join(a, b), c) is join(a, join(b, c))


@given(uses)
def test_prop_w_absorbs(u):
    assert join(Use.W, u) is Use.W


def test_join_all():
    assert join_all([]) is Use.N
    assert join_all([Use.R, Use.N, Use.R]) is Use.R
    assert join_all([Use.D, Use.R]) is Use.W


# ---------------------------------------------------------------------------
# seq: sequential pre-composition
# ---------------------------------------------------------------------------


def test_seq_table():
    # nothing first: rest decides
    for u in Use:
        assert seq(Use.N, u) is u
    # full redefinition first: incoming values dead whatever follows
    for u in Use:
        assert seq(Use.D, u) is Use.D
    # write first: W absorbs
    for u in Use:
        assert seq(Use.W, u) is Use.W
    # read first: stays R unless later modified
    assert seq(Use.R, Use.N) is Use.R
    assert seq(Use.R, Use.R) is Use.R
    assert seq(Use.R, Use.D) is Use.W  # read then redefined = modified
    assert seq(Use.R, Use.W) is Use.W


@given(uses, uses, uses)
def test_prop_seq_associative(a, b, c):
    assert seq(seq(a, b), c) is seq(a, seq(b, c))


@given(uses)
def test_prop_seq_left_identity(u):
    assert seq(Use.N, u) is u


@given(uses, uses)
def test_prop_seq_needs_values_iff_first_touches(a, b):
    """If the first effect reads or writes, the composite needs the values."""
    if a in (Use.R, Use.W):
        assert seq(a, b) in (Use.R, Use.W)


# ---------------------------------------------------------------------------
# statement effects
# ---------------------------------------------------------------------------


def test_stmt_effect_classes():
    eff = stmt_effect(reads=["a"], writes=["b"], defines=["c"])
    assert eff == {"a": Use.R, "b": Use.W, "c": Use.D}


def test_stmt_effect_read_and_write_is_w():
    assert stmt_effect(["a"], ["a"], [])["a"] is Use.W


def test_stmt_effect_read_and_define_is_w():
    # reads the old values first, then fully redefines: values needed
    assert stmt_effect(["a"], [], ["a"])["a"] is Use.W


def test_stmt_effect_write_and_define_is_w():
    assert stmt_effect([], ["a"], ["a"])["a"] is Use.W


# ---------------------------------------------------------------------------
# intent tables (paper Fig. 22 and the call-effect table)
# ---------------------------------------------------------------------------


def test_intent_call_effects():
    assert intent_call_effect("in") is Use.R
    assert intent_call_effect("inout") is Use.W
    assert intent_call_effect("out") is Use.D


def test_intent_entry_exit_fig22():
    assert intent_entry_exit_effects("in") == (Use.D, Use.N)
    assert intent_entry_exit_effects("inout") == (Use.D, Use.W)
    assert intent_entry_exit_effects("out") == (Use.N, Use.W)


def test_unknown_intent_raises():
    with pytest.raises(KeyError):
        intent_call_effect("inplace")
