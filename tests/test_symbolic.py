"""Symbolic-shape templates: compile once, instantiate every (n, P).

The acceptance differential for the symbolic subsystem
(:mod:`repro.symbolic`, the ``symbolize`` pass and
:class:`repro.compiler.template.SymbolicTemplate`):

* **bit-identity** -- on the paper figures (Fig. 1, 12, 16), an artifact
  instantiated from a cached symbolic template executes bit-identically
  (array values, total bytes, message count) to a from-scratch compile at
  the same ``(n, P)``, across a sweep of shape/processor pairs, all three
  schedule policies and the unscheduled executor;
* **workload sweep** -- seeds 0..200 of the random legal workload
  generator produce identical values under symbolic and concrete options
  (literal extents degrade symbolize to the concrete path);
* **level monotonicity** -- optimization levels stay byte-monotone under
  symbolic options (spot check of seeds 0..500);
* **plan memo** -- the bounded, thread-safe :class:`PlanMemo` shared by
  instantiations evicts and rebuilds bit-identically, collapses insert
  races to one build, and pickles empty (artifact bytes never depend on
  traffic history);
* **store integration** -- templates round-trip through the artifact
  store, pass ``verify --deep``, and upgrade legacy binding-name sidecars
  so fresh processes instantiate on first contact.
"""

from __future__ import annotations

import json
import pickle
import threading

import numpy as np
import pytest

from repro import (
    CompilerOptions,
    CompilerSession,
    ExecutionEnv,
    Executor,
    Machine,
    compile_program,
)
from repro.apps.workloads import random_environment, random_legal_subroutine
from repro.compiler.session import source_digest
from repro.compiler.template import SymbolicTemplate
from repro.mapping import ProcessorArrangement
from repro.spmd.schedule import PlanMemo
from repro.store import ArtifactStore

FIG1 = """
subroutine main()
  integer n
  real A(n, n), B(n, n)
!hpf$ align with B :: A
!hpf$ dynamic A, B
!hpf$ distribute B(block, *)
  compute reads A, B
!hpf$ realign A(i, j) with B(j, i)
!hpf$ redistribute B(cyclic, *)
  compute reads A, B
end
"""

FIG12 = """
subroutine remap(A, m)
  integer m, n, p
  real A(n,n), B(n,n), C(n,n)
  intent inout A
!hpf$ align with A :: B, C
!hpf$ dynamic A, B, C
!hpf$ distribute A(block, *)
  compute "init" writes B reads A
  if c1 then
!hpf$   redistribute A(cyclic, *)
    compute writes A, p reads A, B
  else
!hpf$   redistribute A(block, block)
    compute writes p reads A
  endif
  do i = 1, m
!hpf$   redistribute A(*, block)
    compute writes C reads A
!hpf$   redistribute A(block, *)
    compute writes A reads A, C
  enddo
end
"""

FIG16 = """
subroutine main(t)
  integer n, t
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute writes A
  do i = 1, t
!hpf$   redistribute A(cyclic)
    compute writes A reads A
!hpf$   redistribute A(block)
  enddo
  compute reads A
end
"""


def _fig1(n):
    return dict(
        source=FIG1,
        bindings={"n": n},
        conditions={},
        inputs={
            "a": np.arange(n * n, dtype=float).reshape(n, n),
            "b": np.ones((n, n)),
        },
    )


def _fig12_then(n):
    return dict(
        source=FIG12,
        bindings={"n": n, "m": 3},
        conditions={"c1": True},
        inputs={"a": np.arange(n * n, dtype=float).reshape(n, n)},
    )


def _fig12_else(n):
    w = _fig12_then(n)
    w["conditions"] = {"c1": False}
    return w


def _fig16(n):
    return dict(
        source=FIG16,
        bindings={"n": n, "t": 5},
        conditions={},
        inputs={"a": np.arange(float(n))},
    )


CASES = {
    "fig1": _fig1,
    "fig12-then": _fig12_then,
    "fig12-else": _fig12_else,
    "fig16": _fig16,
}

#: the (n, P) sweep of the acceptance criterion: four distinct shapes,
#: three distinct processor counts, none matching the template probes
PAIRS = [(8, 2), (12, 3), (16, 4), (24, 4)]

POLICIES = (None, "naive", "round-robin", "aggregate")
SCHEDULED = ("naive", "round-robin", "aggregate")


def _run(compiled, w):
    machine = Machine(compiled.processors)
    env = ExecutionEnv(
        conditions=dict(w["conditions"]),
        bindings=dict(w["bindings"]),
        inputs={k: v.copy() for k, v in w["inputs"].items()},
        check_invariants=True,
    )
    name = next(iter(compiled.subroutines))
    result = Executor(compiled, machine, env).run(name)
    values = {a: result.value(a) for a in compiled.get(name).sub.arrays}
    return values, machine.stats


def _assert_identical(got, ref, context):
    g_values, g_stats = got
    r_values, r_stats = ref
    for a in r_values:
        assert np.array_equal(g_values[a], r_values[a]), (*context, a)
    assert g_stats.bytes == r_stats.bytes, context
    assert g_stats.local_bytes == r_stats.local_bytes, context
    assert g_stats.messages == r_stats.messages, context
    assert g_stats.phases == r_stats.phases, context


# ---------------------------------------------------------------------------
# acceptance differential: figures x (n, P) sweep x policies
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p or "unscheduled")
@pytest.mark.parametrize("name", sorted(CASES))
def test_instantiated_bit_identical_to_from_scratch(name, policy):
    """One warm compile, then every other (n, P) is served by template
    instantiation -- and each instantiated artifact executes bit-identically
    to from-scratch compiles at that exact shape, both under the same
    symbolic options (the cache-transparency contract) and under plain
    concrete options (the paper's eager baseline)."""
    opts = CompilerOptions.symbolic(level=3, schedule=policy)
    session = CompilerSession(options=opts)
    for i, (n, p) in enumerate(PAIRS):
        w = CASES[name](n)
        compiled, tier = session.compile_traced(
            w["source"], bindings=w["bindings"], processors=p
        )
        assert tier == ("compiled" if i == 0 else "instantiated"), (name, n, p, tier)
        got = _run(compiled, w)
        scratch = compile_program(
            w["source"], bindings=w["bindings"], processors=p, options=opts
        )
        _assert_identical(got, _run(scratch, w), (name, policy, n, p, "symbolic"))
        eager = compile_program(
            w["source"],
            bindings=w["bindings"],
            processors=p,
            options=CompilerOptions(level=3, schedule=policy),
        )
        _assert_identical(got, _run(eager, w), (name, policy, n, p, "eager"))
    assert session.stats["instantiations"] == len(PAIRS) - 1


def test_workload_seeds_symbolic_equals_concrete():
    """Acceptance sweep: seeds 0..200, policy rotating per seed, symbolic
    options produce bit-identical values to concrete options.  Random
    workloads have literal extents, so symbolize classifies nothing
    shape-symbolic and must degrade to the concrete path."""
    for seed in range(201):
        rng = np.random.default_rng(seed)
        program = random_legal_subroutine(rng, n_arrays=2, length=5, depth=1)
        conditions, inputs = random_environment(rng, n_arrays=2)
        w = dict(bindings={}, conditions=conditions, inputs=inputs)
        policy = SCHEDULED[seed % 3]
        sym = compile_program(
            program,
            processors=4,
            options=CompilerOptions.symbolic(level=3, schedule=policy),
        )
        ref = compile_program(
            program, processors=4, options=CompilerOptions(level=3, schedule=policy)
        )
        values, _ = _run(sym, w)
        ref_values, _ = _run(ref, w)
        for a in ref_values:
            assert np.array_equal(values[a], ref_values[a]), (seed, policy, a)


@pytest.mark.parametrize("seed", range(0, 501, 25))
def test_symbolized_levels_stay_monotone(seed):
    """Level monotonicity holds under symbolic options too (spot check of
    seeds 0..500): total communicated bytes never increase with level."""
    rng = np.random.default_rng(seed)
    program = random_legal_subroutine(rng, n_arrays=2, length=5, depth=1)
    conditions, inputs = random_environment(rng, n_arrays=2)
    w = dict(bindings={}, conditions=conditions, inputs=inputs)
    totals = []
    for level in (0, 1, 2, 3):
        compiled = compile_program(
            program, processors=4, options=CompilerOptions.symbolic(level=level)
        )
        _, stats = _run(compiled, w)
        totals.append(stats.bytes)
    assert all(a >= b for a, b in zip(totals, totals[1:])), (seed, totals)


# ---------------------------------------------------------------------------
# the template artifact itself
# ---------------------------------------------------------------------------


def _warm_template(policy="round-robin"):
    """Compile FIG16 once under symbolic options; return (session, template)."""
    opts = CompilerOptions.symbolic(level=3, schedule=policy)
    session = CompilerSession(options=opts)
    w = _fig16(16)
    session.compile_traced(w["source"], bindings=w["bindings"], processors=4)
    assert len(session._templates) == 1
    return session, next(iter(session._templates.values()))


def test_template_closed_form_cross_check():
    """verify_instantiation re-derives every rectangle from the closed-form
    symbolic regions; any disagreement with the instantiated artifact is a
    soundness bug.  Clean across shapes and grids beyond the probe set."""
    _, template = _warm_template()
    for n, p in [(8, 2), (12, 3), (20, 5), (32, 4), (40, 8)]:
        bindings = {"n": n}
        compiled = template.instantiate(bindings, ProcessorArrangement("P", (p,)))
        assert template.verify_instantiation(compiled, bindings) == [], (n, p)


def test_template_instantiation_is_deterministic():
    """Two instantiations at the same (n, P) are interchangeable: identical
    values, bytes, messages and phases under execution."""
    _, template = _warm_template()
    w = _fig16(24)
    procs = ProcessorArrangement("P", (3,))
    a = template.instantiate({"n": 24}, procs)
    b = template.instantiate({"n": 24}, procs)
    _assert_identical(_run(a, w), _run(b, w), ("determinism",))


def test_template_rejects_missing_shapes():
    _, template = _warm_template()
    assert template.missing_shapes({}) == ["n"]
    assert template.missing_shapes({"n": 16}) == []


def test_frozen_template_survives_pickle_with_empty_memo():
    """Artifact bytes must not depend on which shapes a session served:
    pickling drops the memo contents, and the revived template still
    instantiates correctly."""
    _, template = _warm_template()
    # serve one shape so the memo is warm
    template.instantiate({"n": 16}, ProcessorArrangement("P", (4,)))
    revived = pickle.loads(pickle.dumps(template))
    assert isinstance(revived, SymbolicTemplate)
    assert len(revived.memo) == 0
    w = _fig16(12)
    got = _run(revived.instantiate({"n": 12}, ProcessorArrangement("P", (3,))), w)
    ref = _run(template.instantiate({"n": 12}, ProcessorArrangement("P", (3,))), w)
    _assert_identical(got, ref, ("pickle",))


# ---------------------------------------------------------------------------
# the shared plan memo
# ---------------------------------------------------------------------------


def _redist_pair(n, p):
    from repro.mapping import DistFormat, Mapping

    procs = ProcessorArrangement("P", (p,))
    src = Mapping.simple((n,), (DistFormat.block(),), procs, "A")
    dst = Mapping.simple((n,), (DistFormat.cyclic(),), procs, "A")
    return src, dst


def test_plan_memo_evicts_and_rebuilds_bit_identically():
    memo = PlanMemo(capacity=2)
    first = memo.get_or_build("round-robin", *_redist_pair(16, 4))
    memo.get_or_build("round-robin", *_redist_pair(24, 4))
    memo.get_or_build("round-robin", *_redist_pair(32, 4))  # evicts (16, 4)
    assert memo.stats()["evictions"] == 1
    assert len(memo) == 2
    rebuilt = memo.get_or_build("round-robin", *_redist_pair(16, 4))
    assert rebuilt is not first
    assert rebuilt.phases == first.phases
    assert rebuilt.local_transfers == first.local_transfers
    assert memo.stats()["misses"] == 4


def test_plan_memo_keys_embed_shape_and_grid():
    """Distinct (n, P) must never cross-serve plans through the memo."""
    memo = PlanMemo()
    a = memo.get_or_build("naive", *_redist_pair(16, 4))
    b = memo.get_or_build("naive", *_redist_pair(16, 2))
    c = memo.get_or_build("naive", *_redist_pair(8, 4))
    assert memo.stats()["misses"] == 3
    assert len({id(x) for x in (a, b, c)}) == 3


def test_plan_memo_insert_race_collapses_to_one_build():
    memo = PlanMemo()
    src, dst = _redist_pair(32, 4)
    results = [None] * 8
    barrier = threading.Barrier(8)

    def worker(i):
        barrier.wait()
        results[i] = memo.get_or_build("aggregate", src, dst)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert memo.stats()["misses"] == 1
    assert len({id(r) for r in results}) == 1


def test_plan_memo_rejects_zero_capacity():
    from repro.errors import ScheduleError

    with pytest.raises(ScheduleError):
        PlanMemo(capacity=0)


# ---------------------------------------------------------------------------
# store integration
# ---------------------------------------------------------------------------


def test_template_roundtrips_through_store_and_deep_verify(tmp_path):
    opts = CompilerOptions.symbolic(level=3, schedule="aggregate")
    store = ArtifactStore(tmp_path / "store")
    s1 = CompilerSession(store=store, options=opts)
    w = _fig16(16)
    _, tier = s1.compile_traced(w["source"], bindings=w["bindings"], processors=4)
    assert tier == "compiled"
    # symbolized sources write the shape-erased template, not the concrete
    assert store.stats["entries_template"] == 1
    assert store.stats["entries_concrete"] == 0
    report = store.verify(deep=True)
    assert report["ok"] == 1
    assert report["corrupt"] == 0
    assert report["invariant_violations"] == 0

    # a fresh session sharing only the directory instantiates on first
    # contact with a shape it has never compiled
    s2 = CompilerSession(store=store, options=opts)
    w2 = _fig16(24)
    compiled, tier2 = s2.compile_traced(
        w2["source"], bindings=w2["bindings"], processors=3
    )
    assert tier2 == "instantiated"
    _assert_identical(
        _run(compiled, w2),
        _run(
            compile_program(
                w2["source"], bindings=w2["bindings"], processors=3, options=opts
            ),
            w2,
        ),
        ("store-roundtrip",),
    )
    assert store.stats["hits_template"] >= 1
    assert store.stats["shape_reuse_ratio"] == 1.0


def test_legacy_sidecar_upgraded_by_template_write(tmp_path):
    """A pre-PR-7 sidecar (bare binding-name list, no shape classification)
    must not pin the store to concrete keying forever: the first symbolized
    compile upgrades it, and fresh processes then instantiate on first
    contact."""
    store = ArtifactStore(tmp_path / "store")
    digest = source_digest(FIG16)
    store._names_path(digest).write_text(json.dumps(["n", "t"]))
    assert store.binding_names(digest) == frozenset({"n", "t"})
    assert store.shape_names(digest) is None  # legacy: unclassified

    opts = CompilerOptions.symbolic(level=3, schedule="round-robin")
    s1 = CompilerSession(store=store, options=opts)
    w = _fig16(16)
    _, tier = s1.compile_traced(w["source"], bindings=w["bindings"], processors=4)
    assert tier == "compiled"
    assert store.shape_names(digest) == frozenset({"n"})

    s2 = CompilerSession(store=store, options=opts)
    w2 = _fig16(40)
    compiled, tier2 = s2.compile_traced(
        w2["source"], bindings=w2["bindings"], processors=5
    )
    assert tier2 == "instantiated"
    values, _ = _run(compiled, w2)
    assert values["a"].shape == (40,)


def test_shape_diverse_traffic_collapses_to_one_disk_entry(tmp_path):
    """The shape-erased key: eight (n, P) shapes of one program occupy one
    store entry, and the hit-by-kind counters expose the reuse ratio."""
    opts = CompilerOptions.symbolic(level=3, schedule=None)
    store = ArtifactStore(tmp_path / "store")
    shapes = [(8, 2), (12, 3), (16, 4), (20, 2), (24, 4), (32, 4), (40, 5), (48, 8)]
    for n, p in shapes:
        # a fresh session per shape: every request after the first must be
        # answered by loading the one template from disk
        session = CompilerSession(store=store, options=opts)
        w = _fig16(n)
        _, tier = session.compile_traced(
            w["source"], bindings=w["bindings"], processors=p
        )
        assert tier == ("compiled" if (n, p) == shapes[0] else "instantiated")
    assert store.stats["entries_template"] == 1
    assert store.stats["entries_concrete"] == 0
    assert store.stats["hits_template"] == len(shapes) - 1
    assert store.stats["stores_template"] == 1
    assert store.stats["shape_reuse_ratio"] == 1.0
    kinds = store.entries_by_kind()
    assert kinds == {"template": 1} or kinds.get("template") == 1
