"""The RPR0xx lint rules: loud on seeded defects, silent on real programs.

Also pins the exit-code contract shared by the three command-line
gates -- ``python -m repro.lint``, ``python -m repro.store`` and
``benchmarks/check_regression.py``: 0 = clean, 1 = findings,
2 = infrastructure error.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.lints import LINT_RULES, Finding, lint_program
from repro.apps.adi import build_adi_program
from repro.apps.fft2d import build_fft2d_program
from repro.apps.lu import build_lu_program
from repro.apps.sar import build_sar_program
from repro.compiler.diagnostics import CompileReport
from repro.lint import main as lint_cli

REPO = Path(__file__).resolve().parent.parent

N = 16

FIG1 = """
subroutine main()
  integer n
  real A(n, n), B(n, n)
!hpf$ align with B :: A
!hpf$ dynamic A, B
!hpf$ distribute B(block, *)
  compute reads A, B
!hpf$ realign A(i, j) with B(j, i)
!hpf$ redistribute B(cyclic, *)
  compute reads A, B
end
"""

FIG12 = """
subroutine remap(A, m)
  integer m, n, p
  real A(n,n), B(n,n), C(n,n)
  intent inout A
!hpf$ align with A :: B, C
!hpf$ dynamic A, B, C
!hpf$ distribute A(block, *)
  compute "init" writes B reads A
  if c1 then
!hpf$   redistribute A(cyclic, *)
    compute writes A, p reads A, B
  else
!hpf$   redistribute A(block, block)
    compute writes p reads A
  endif
  do i = 1, m
!hpf$   redistribute A(*, block)
    compute writes C reads A
!hpf$   redistribute A(block, *)
    compute writes A reads A, C
  enddo
end
"""

FIG16 = """
subroutine main(t)
  integer n, t
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute writes A
  do i = 1, t
!hpf$   redistribute A(cyclic)
    compute writes A reads A
!hpf$   redistribute A(block)
  enddo
  compute reads A
end
"""

# Fig. 2's "useless remapping": remapped, never referenced again
DEAD_END = """
subroutine f()
  integer n
  real A(n), B(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
!hpf$ distribute B(block)
  compute reads A, B writes B
!hpf$ redistribute A(cyclic)
end
"""

# Fig. 2's there-and-back: remap, no use, remap straight back
ROUND_TRIP = """
subroutine f()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute reads A writes A
!hpf$ redistribute A(cyclic)
!hpf$ redistribute A(block)
  compute reads A
end
"""

NOOP_REMAP = """
subroutine g()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
!hpf$ redistribute A(cyclic)
  compute reads A writes A
!hpf$ redistribute A(cyclic)
  compute reads A writes A
end
"""

DOUBLE_KILL = """
subroutine h()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute reads A writes A
!hpf$ kill A
!hpf$ kill A
end
"""

DEAD_BRANCH = """
subroutine d(m)
  integer n, m
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute writes A
  do i = 1, m
    if c1 then
      compute reads A writes A
    else
      compute reads A
    endif
  enddo
  compute reads A
end
"""


def _rules(source, bindings=None):
    return [f.rule for f in lint_program(source, bindings=bindings or {"n": N})]


# ---------------------------------------------------------------------------
# each rule fires on its seeded defect
# ---------------------------------------------------------------------------


def test_rpr001_dead_end_remap():
    assert _rules(DEAD_END) == ["RPR001"]


def test_rpr001_round_trip_remap():
    assert _rules(ROUND_TRIP) == ["RPR001"]


def test_rpr002_noop_remap():
    assert _rules(NOOP_REMAP) == ["RPR002"]


def test_rpr003_double_kill():
    assert _rules(DOUBLE_KILL) == ["RPR003"]


def test_rpr005_scenario_unreachable_branch():
    # m is bound to 0: the loop never runs, the branch is never evaluated
    findings = lint_program(DEAD_BRANCH, bindings={"n": N, "m": 0})
    assert [f.rule for f in findings] == ["RPR005"]
    # with a positive trip count the same branch is reachable
    assert lint_program(DEAD_BRANCH, bindings={"n": N, "m": 2}) == []


def test_findings_carry_span_and_key():
    (f,) = lint_program(DEAD_END, bindings={"n": N})
    assert f.rule in LINT_RULES
    assert f.severity == "warning"
    assert f.subroutine == "f"
    assert f.node is not None
    assert "redistribute" in f.snippet
    assert f.key() == f"RPR001:f:{f.node}:a"
    as_json = f.to_json()
    assert as_json["rule"] == "RPR001" and as_json["key"] == f.key()
    assert str(f)  # renders without error


def test_findings_surface_through_compile_report():
    report = CompileReport()
    findings = lint_program(DEAD_END, bindings={"n": N}, report=report)
    assert findings
    lint_diags = [d for d in report.diagnostics if d.pass_name == "lint"]
    assert len(lint_diags) == len(findings)


# ---------------------------------------------------------------------------
# every rule is silent on the figures and the four applications
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,source,bindings",
    [
        ("fig1", FIG1, {"n": N}),
        ("fig12", FIG12, {"n": N, "m": 3}),
        ("fig16", FIG16, {"n": N, "t": 5}),
    ],
)
def test_figures_are_lint_clean(name, source, bindings):
    assert lint_program(source, bindings=bindings) == []


@pytest.mark.parametrize(
    "builder",
    [
        lambda: build_adi_program(N),
        lambda: build_fft2d_program(N),
        lambda: build_lu_program(N, 4)[0],
        lambda: build_sar_program(N),
    ],
    ids=["adi", "fft2d", "lu", "sar"],
)
def test_apps_are_lint_clean(builder):
    assert lint_program(builder()) == []


def test_committed_baseline_matches_current_findings():
    """CI gates on tests/lint_baseline.json; it must stay in sync with
    what the rules actually produce over apps + workload seeds 0..25."""
    from repro.apps.workloads import random_legal_subroutine

    keys = []
    for seed in range(26):
        rng = np.random.default_rng(seed)
        for f in lint_program(random_legal_subroutine(rng)):
            keys.append(f"workload-{seed}::{f.key()}")
    committed = set(json.loads((REPO / "tests" / "lint_baseline.json").read_text())["keys"])
    assert set(keys) == committed, (
        "lint rules drifted from tests/lint_baseline.json -- regenerate with "
        "`python -m repro.lint --apps --workloads 0:26 --write-baseline "
        "tests/lint_baseline.json`"
    )


# ---------------------------------------------------------------------------
# the shared 0/1/2 exit-code contract, pinned via real subprocesses
# ---------------------------------------------------------------------------


def _invoke(args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, *args],
        capture_output=True,
        text=True,
        cwd=cwd or REPO,
        env=env,
        timeout=600,
    )


def test_lint_cli_exit_codes(tmp_path):
    clean = tmp_path / "clean.hpf"
    clean.write_text(FIG16)
    dirty = tmp_path / "dirty.hpf"
    dirty.write_text(DEAD_END)
    bindings = '{"n": 16, "t": 5}'

    assert _invoke(["-m", "repro.lint", str(clean), "--bindings", bindings]).returncode == 0
    r = _invoke(["-m", "repro.lint", str(dirty), "--bindings", '{"n": 16}'])
    assert r.returncode == 1
    assert "RPR001" in r.stdout
    assert _invoke(["-m", "repro.lint", str(tmp_path / "missing.hpf")]).returncode == 2
    assert _invoke(["-m", "repro.lint"]).returncode == 2  # nothing selected

    # JSON report + baseline round trip through the real CLI
    out = tmp_path / "report.json"
    base = tmp_path / "base.json"
    assert lint_cli([str(dirty), "--bindings", '{"n": 16}',
                     "--write-baseline", str(base)]) == 0
    assert lint_cli([str(dirty), "--bindings", '{"n": 16}',
                     "--baseline", str(base), "--json", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["unexpected"] == 0 and report["total"] == 1


def test_store_cli_exit_codes(tmp_path):
    # 2: no store at the given root
    assert _invoke(["-m", "repro.store", "stats", "--dir", str(tmp_path / "no")]).returncode == 2


def test_regression_gate_exit_codes(tmp_path):
    gate = str(REPO / "benchmarks" / "check_regression.py")
    baselines = REPO / "benchmarks" / "baselines"
    # 0: baselines compared against themselves are clean by definition
    assert _invoke([gate, "--fresh-dir", str(baselines)]).returncode == 0
    # 2: missing fresh results are an infrastructure error
    assert _invoke([gate, "--fresh-dir", str(tmp_path)]).returncode == 2
    # 1: a genuine regression (makespan ordering violated) in fresh output
    fresh = json.loads((baselines / "BENCH_schedule.json").read_text())
    case = next(iter(fresh["results"]))
    fresh["results"][case]["round-robin"]["makespan_us"] = (
        fresh["results"][case]["naive"]["makespan_us"] + 1000.0
    )
    (tmp_path / "BENCH_schedule.json").write_text(json.dumps(fresh))
    (tmp_path / "BENCH_service.json").write_text(
        (baselines / "BENCH_service.json").read_text()
    )
    (tmp_path / "BENCH_symbolic.json").write_text(
        (baselines / "BENCH_symbolic.json").read_text()
    )
    (tmp_path / "BENCH_mp.json").write_text(
        (baselines / "BENCH_mp.json").read_text()
    )
    assert _invoke([gate, "--fresh-dir", str(tmp_path)]).returncode == 1
