"""Replay the pinned fuzz corpus through the full oracle matrix.

Every entry in ``tests/fuzz_corpus/`` is a program the fuzzer once
shrank (or a survivor pinned for feature coverage).  The *fixed*
compiler must report nothing for any of them, across all 64 cells of
the option matrix -- the same pinning discipline as workload seed 2558
in ``tests/test_cost_guard.py``, applied to the whole corpus.
"""

from pathlib import Path

import pytest

from repro.fuzz.corpus import load_corpus
from repro.fuzz.oracle import OracleConfig, run_oracle
from repro.lang.ast_nodes import Do, If, Kill, Redistribute, walk_statements
from repro.lang.parser import parse_program

CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"
ENTRIES = load_corpus(CORPUS_DIR)

#: feature tags the ISSUE requires the corpus to cover
REQUIRED_COVERS = {
    "zero-trip-loop",
    "kill-before-use",
    "both-arm-remap",
    "nested-symbolic-loops",
}

#: the oracle slice the teeth entries were pinned under
TEETH = OracleConfig(
    levels=(0, 1, 2, 3),
    schedules=(None,),
    variants=("eager",),
    provenances=("fresh",),
    lint=False,
    unguarded_motion=True,
)


def test_corpus_is_seeded():
    assert len(ENTRIES) >= 10


def test_corpus_covers_required_features():
    covered = {tag for e in ENTRIES for tag in e.covers}
    assert REQUIRED_COVERS <= covered, REQUIRED_COVERS - covered


@pytest.mark.parametrize("entry", ENTRIES, ids=[e.name for e in ENTRIES])
def test_corpus_entry_survives_the_full_matrix(entry):
    findings = run_oracle(entry.to_case(), OracleConfig.full())
    assert findings == [], [str(f) for f in findings]


def test_teeth_entries_still_reproduce_without_the_guard():
    """The two shrunk counter-examples must keep demonstrating the
    violation the CostGuard exists to prevent -- if unguarded motion
    stops reproducing them, the pins have gone stale."""
    teeth_entries = [e for e in ENTRIES if "teeth" in e.covers]
    assert len(teeth_entries) >= 2
    for entry in teeth_entries:
        findings = run_oracle(entry.to_case(), TEETH)
        kinds = {f.kind for f in findings}
        assert set(entry.kinds) <= kinds, (entry.name, kinds)


def _structural_features(entry):
    """Recompute feature tags from the pinned source (the same
    classification the seeding used), so ``covers`` stays honest."""
    program = parse_program(entry.source)
    body = program.subroutines[0].body
    tags = set()
    for stmt in walk_statements(body):
        if isinstance(stmt, Kill):
            tags.add("kill-before-use")
        elif isinstance(stmt, Do):
            hi = stmt.hi
            if isinstance(hi, str):
                tags.add("symbolic-loop")
                hi = entry.bindings.get(hi, 0)
            if hi < stmt.lo:
                tags.add("zero-trip-loop")
            inner = [s for s in walk_statements(stmt.body) if isinstance(s, Do)]
            if inner:
                tags.add("nested-loops")
                if isinstance(stmt.hi, str) or any(
                    isinstance(s.hi, str) for s in inner
                ):
                    tags.add("nested-symbolic-loops")
        elif isinstance(stmt, If):
            then_remaps = {
                s.target
                for s in walk_statements(stmt.then)
                if isinstance(s, Redistribute)
            }
            else_remaps = {
                s.target
                for s in walk_statements(stmt.orelse)
                if isinstance(s, Redistribute)
            }
            if then_remaps & else_remaps:
                tags.add("both-arm-remap")
    return tags


@pytest.mark.parametrize(
    "entry",
    [e for e in ENTRIES if "teeth" not in e.covers],
    ids=[e.name for e in ENTRIES if "teeth" not in e.covers],
)
def test_covers_tags_match_program_structure(entry):
    assert set(entry.covers) <= _structural_features(entry), entry.name
