"""Fused loop replay: record-then-replay must be invisible to semantics.

The contract under test (see :mod:`repro.runtime.fusion`): a fused run is
bit-identical to an unfused run of the same program and environment -- the
same values, bytes, messages, phases, status checks and plan accounting --
while actually taking the replay fast path (the counters prove it).  Edge
cases from the ISSUE: trip counts 0 and 1 never fuse, a mid-loop branch
divergence completes correctly, invalidates the trace and re-records, and
the Fig. 12/16 loops agree under every schedule policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CompilerOptions,
    CompilerSession,
    ExecutionEnv,
    Executor,
    Machine,
    compile_program,
)
from repro.apps.workloads import loopy_subroutine
from repro.spmd.schedule import POLICIES

FIG12 = """
subroutine remap(A, m)
  integer m, n, p
  real A(n,n), B(n,n), C(n,n)
  intent inout A
!hpf$ align with A :: B, C
!hpf$ dynamic A, B, C
!hpf$ distribute A(block, *)
  compute "init" writes B reads A
  if c1 then
!hpf$   redistribute A(cyclic, *)
    compute writes A, p reads A, B
  else
!hpf$   redistribute A(block, block)
    compute writes p reads A
  endif
  do i = 1, m
!hpf$   redistribute A(*, block)
    compute writes C reads A
!hpf$   redistribute A(block, *)
    compute writes A reads A, C
  enddo
end
"""

BRANCHY_LOOP = """
subroutine main()
  integer n, t
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute defines A
  do i = 1, t
    if c1 then
!hpf$   redistribute A(cyclic)
    else
!hpf$   redistribute A(cyclic(2))
    endif
!hpf$ redistribute A(block)
    compute writes A reads A
  enddo
  compute reads A
end
"""


def run_pair(
    src,
    *,
    bindings,
    conditions=None,
    inputs=None,
    options=None,
    nprocs=4,
    dtype=np.float64,
):
    """Run fused and unfused executions of the same program; return both."""
    compiled = compile_program(
        src,
        bindings=bindings,
        processors=nprocs,
        options=options or CompilerOptions(level=3),
    )
    entry = next(iter(compiled.subroutines))
    results = {}
    for fuse in (True, False):
        env = ExecutionEnv(
            conditions={k: list(v) if isinstance(v, list) else v for k, v in (conditions or {}).items()},
            bindings=bindings,
            inputs={k: np.array(v) for k, v in (inputs or {}).items()},
            check_invariants=True,
            dtype=dtype,
            fuse_loops=fuse,
        )
        machine = Machine(compiled.processors)
        results[fuse] = Executor(compiled, machine, env).run(entry)
    return results[True], results[False], compiled


def assert_identical(fused, unfused, arrays):
    """The full bit-identity contract: values, traffic, drift."""
    for name in arrays:
        np.testing.assert_array_equal(fused.value(name), unfused.value(name))
    assert fused.stats.snapshot() == unfused.stats.snapshot()
    assert fused.machine.phase_seconds == unfused.machine.phase_seconds
    assert fused.drift.clean and unfused.drift.clean


# ---------------------------------------------------------------------------
# trip-count edges: 0 and 1 (and 2) never replay
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("trips", [0, 1])
def test_no_fusion_below_three_trips(trips):
    fused, unfused, _ = run_pair(
        FIG12,
        bindings={"n": 8, "m": trips},
        conditions={"c1": True},
        inputs={"a": np.arange(64.0).reshape(8, 8)},
    )
    assert fused.fusion.traces_recorded == 0
    assert fused.fusion.replays == 0
    assert unfused.fusion.traces_recorded == 0
    assert_identical(fused, unfused, ["a"])


def test_two_trips_take_the_plain_path():
    # two trips leave no iteration to replay after the two recording
    # passes, so fusion does not even record
    fused, unfused, _ = run_pair(
        FIG12,
        bindings={"n": 8, "m": 2},
        conditions={"c1": True},
        inputs={"a": np.arange(64.0).reshape(8, 8)},
    )
    assert fused.fusion.traces_recorded == 0
    assert fused.fusion.replays == 0
    assert_identical(fused, unfused, ["a"])


def test_sixteen_trips_replay_fourteen():
    fused, unfused, _ = run_pair(
        FIG12,
        bindings={"n": 8, "m": 16},
        conditions={"c1": False},
        inputs={"a": np.arange(64.0).reshape(8, 8)},
    )
    assert fused.fusion.traces_recorded == 2
    assert fused.fusion.replays == 14
    assert fused.fusion.invalidations == 0
    assert_identical(fused, unfused, ["a"])


# ---------------------------------------------------------------------------
# divergence: branch outcomes force invalidation + re-record
# ---------------------------------------------------------------------------


def test_branch_divergence_invalidates_and_rerecords():
    # iterations:   1     2     3     4      5     6     7     8
    # conditions:   T     T     T     F      F     F     F     F
    # fused:      record record replay diverge record record replay replay
    conds = [True, True, True, False, False, False, False, False]
    fused, unfused, _ = run_pair(
        BRANCHY_LOOP,
        bindings={"n": 16, "t": len(conds)},
        conditions={"c1": list(conds)},
    )
    assert fused.fusion.invalidations == 1
    assert fused.fusion.traces_recorded == 4  # two recordings per steady state
    assert fused.fusion.replays == 3
    assert_identical(fused, unfused, ["a"])


def test_alternating_branch_never_replays_wrongly():
    conds = [bool(i % 2) for i in range(10)]
    fused, unfused, _ = run_pair(
        BRANCHY_LOOP,
        bindings={"n": 16, "t": len(conds)},
        conditions={"c1": list(conds)},
    )
    # every warm replay diverges; correctness must be untouched
    assert fused.fusion.invalidations >= 1
    assert_identical(fused, unfused, ["a"])


# ---------------------------------------------------------------------------
# Fig. 12 / Fig. 16 loops under every schedule policy
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy", [None, *POLICIES])
def test_fig12_bit_identical_under_policies(policy):
    fused, unfused, _ = run_pair(
        FIG12,
        bindings={"n": 8, "m": 10},
        conditions={"c1": True},
        inputs={"a": np.linspace(0.0, 1.0, 64).reshape(8, 8)},
        options=CompilerOptions(level=3, schedule=policy),
    )
    assert fused.fusion.replays == 8
    assert_identical(fused, unfused, ["a"])


@pytest.mark.parametrize("policy", [None, *POLICIES])
def test_fig16_loopy_bit_identical_under_policies(policy):
    prog = loopy_subroutine(2, n=16)
    compiled = compile_program(
        prog,
        bindings={"n": 16, "t": 12},
        processors=4,
        options=CompilerOptions(level=1, schedule=policy),
    )
    results = {}
    for fuse in (True, False):
        env = ExecutionEnv(
            bindings={"t": 12},
            check_invariants=True,
            fuse_loops=fuse,
        )
        results[fuse] = Executor(compiled, Machine(compiled.processors), env).run(
            "loopy"
        )
    fused, unfused = results[True], results[False]
    assert fused.fusion.replays > 0
    assert_identical(fused, unfused, ["a"])


# ---------------------------------------------------------------------------
# nested and symbolic loops
# ---------------------------------------------------------------------------


NESTED = """
subroutine main()
  integer n, t, u
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute defines A
  do i = 1, t
    do j = 1, u
!hpf$ redistribute A(cyclic)
      compute writes A reads A
!hpf$ redistribute A(block)
      compute writes A reads A
    enddo
    compute reads A
  enddo
end
"""


def test_nested_loops_fuse_independently():
    fused, unfused, _ = run_pair(
        NESTED, bindings={"n": 16, "t": 5, "u": 4}, options=CompilerOptions(level=1)
    )
    # outer and inner traces both recorded; inner replays across outer trips
    assert fused.fusion.traces_recorded >= 4
    assert fused.fusion.replays > fused.fusion.traces_recorded
    assert_identical(fused, unfused, ["a"])


def test_zero_trip_inner_loop():
    fused, unfused, _ = run_pair(
        NESTED, bindings={"n": 16, "t": 6, "u": 0}, options=CompilerOptions(level=1)
    )
    assert_identical(fused, unfused, ["a"])


# ---------------------------------------------------------------------------
# opt-outs and accounting surfaces
# ---------------------------------------------------------------------------


def test_memory_limit_disables_fusion():
    compiled = compile_program(
        FIG12,
        bindings={"n": 8, "m": 8},
        processors=4,
        options=CompilerOptions(level=3),
    )
    machine = Machine(compiled.processors)
    machine.memory_limit = 1 << 30  # roomy, but any limit opts out
    env = ExecutionEnv(
        conditions={"c1": True},
        bindings={"n": 8, "m": 8},
        inputs={"a": np.zeros((8, 8))},
    )
    result = Executor(compiled, machine, env).run("remap")
    assert result.fusion.traces_recorded == 0
    assert result.fusion.replays == 0


def test_env_opt_out_disables_fusion():
    fused, unfused, _ = run_pair(
        FIG12,
        bindings={"n": 8, "m": 8},
        conditions={"c1": True},
        inputs={"a": np.zeros((8, 8))},
    )
    assert unfused.fusion.replays == 0 and unfused.fusion.traces_recorded == 0
    assert fused.fusion.replays > 0


def test_session_accumulates_fusion_stats():
    session = CompilerSession()
    prog = loopy_subroutine(1, n=16)
    session.run(prog, bindings={"n": 16, "t": 8}, processors=4)
    stats = session.stats
    assert stats["loop_traces_recorded"] == 2
    assert stats["loop_replays"] == 6
    assert stats["loop_invalidations"] == 0
    session.run(prog, bindings={"n": 16, "t": 8}, processors=4, fuse_loops=False)
    assert session.stats["loop_replays"] == 6  # opt-out run added nothing


def test_obs_counters_cover_fusion():
    from repro.obs.catalog import REGISTRY

    session = CompilerSession()
    prog = loopy_subroutine(1, n=16)
    def counters(snap):
        return {
            m["name"]: m.get("value", 0)
            for m in snap["metrics"]
            if m["name"].startswith("repro.runtime.loop_")
        }

    before = counters(REGISTRY.snapshot())
    session.run(prog, bindings={"n": 16, "t": 8}, processors=4)
    after = counters(REGISTRY.snapshot())

    def delta(name):
        return after.get(name, 0) - before.get(name, 0)

    assert delta("repro.runtime.loop_traces_recorded") == 2
    assert delta("repro.runtime.loop_replays") == 6
