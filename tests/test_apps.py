"""Application-level integration tests: numerics validated vs NumPy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.adi import run_adi, thomas_constant
from repro.apps.fft2d import run_fft2d
from repro.apps.lu import lu_reference, run_lu
from repro.apps.sar import run_sar


# ---------------------------------------------------------------------------
# ADI
# ---------------------------------------------------------------------------


def test_thomas_solves_tridiagonal_system():
    n, alpha = 12, 0.3
    rng = np.random.default_rng(1)
    rhs = rng.normal(size=n)
    x = thomas_constant(rhs, axis=0, alpha=alpha)
    t = (
        np.diag(np.full(n, 1 + 2 * alpha))
        + np.diag(np.full(n - 1, -alpha), 1)
        + np.diag(np.full(n - 1, -alpha), -1)
    )
    assert np.allclose(t @ x, rhs)


def test_thomas_vectorized_matches_columnwise():
    rng = np.random.default_rng(2)
    rhs = rng.normal(size=(6, 5))
    full = thomas_constant(rhs, axis=0, alpha=0.2)
    for j in range(5):
        assert np.allclose(full[:, j], thomas_constant(rhs[:, j], 0, 0.2))


def test_adi_runs_and_matches_reference():
    res = run_adi(n=16, steps=3, nprocs=4)
    assert res.correct, f"max error {res.max_error}"
    assert res.stats["messages"] > 0


def test_adi_remaps_are_all_essential():
    """ADI is the honest negative control: u is rewritten under each mapping
    every iteration, so none of its remappings can be avoided -- the
    optimizations must not help, and crucially must not hurt either."""
    steps = 4
    r3 = run_adi(n=16, steps=steps, nprocs=4, level=3)
    r0 = run_adi(n=16, steps=steps, nprocs=4, level=0)
    assert r3.correct and r0.correct
    # the loop-top 'ensure (block,*)' remap at iteration 1 is free for both:
    # optimized via the status check, naive because the copy is version 0 to
    # version 0 (all-local); every other transpose must really happen
    assert r3.stats["remaps_performed"] == 2 * steps - 1
    assert r3.stats["bytes"] == r0.stats["bytes"]
    assert np.allclose(r3.value, r0.value)


def test_adi_different_processor_counts():
    for p in (1, 2, 8):
        res = run_adi(n=16, steps=2, nprocs=p)
        assert res.correct


# ---------------------------------------------------------------------------
# FFT
# ---------------------------------------------------------------------------


def test_fft2d_matches_numpy():
    res = run_fft2d(n=32, nprocs=4)
    assert res.correct, f"max error {res.max_error}"


def test_fft2d_transpose_is_all_to_all():
    res = run_fft2d(n=32, nprocs=4)
    # one corner turn: P*(P-1) messages, all data but the diagonal moves
    assert res.stats["messages"] == 4 * 3
    assert res.stats["remaps_performed"] == 1
    moved = res.stats["bytes"]
    total = 32 * 32 * 16  # complex128
    assert moved == pytest.approx(total * 3 / 4)


def test_fft2d_single_processor_no_messages():
    res = run_fft2d(n=16, nprocs=1)
    assert res.correct
    assert res.stats["messages"] == 0


# ---------------------------------------------------------------------------
# LU
# ---------------------------------------------------------------------------


def test_lu_reference_factors():
    rng = np.random.default_rng(3)
    a = rng.normal(size=(8, 8)) + 8 * np.eye(8)
    lu = lu_reference(a)
    lower = np.tril(lu, -1) + np.eye(8)
    upper = np.triu(lu)
    assert np.allclose(lower @ upper, a)


def test_lu_runs_and_matches_reference():
    res = run_lu(n=16, block=4, nprocs=4)
    assert res.correct, f"max error {res.max_error}"
    assert res.stats["remaps_performed"] > 0


def test_lu_naive_agrees_but_pays_more():
    r0 = run_lu(n=16, block=4, nprocs=4, level=0)
    r3 = run_lu(n=16, block=4, nprocs=4, level=3)
    assert r0.correct and r3.correct
    assert np.allclose(r0.value, r3.value)
    assert r3.stats["bytes"] <= r0.stats["bytes"]


# ---------------------------------------------------------------------------
# SAR
# ---------------------------------------------------------------------------


def test_sar_matches_reference():
    res = run_sar(n=32, looks=2, nprocs=4)
    assert res.correct, f"max error {res.max_error}"


def test_sar_corner_turn_traffic():
    res = run_sar(n=32, looks=0, nprocs=4)
    assert res.correct
    assert res.stats["remaps_performed"] == 1  # the corner turn
    assert res.stats["messages"] == 4 * 3


def test_sar_point_target_focused():
    # matched filtering should concentrate energy back onto point targets
    res = run_sar(n=64, looks=0, nprocs=4, seed=7)
    mag = np.abs(res.value)
    # the peak must dominate the median strongly (focused image)
    assert mag.max() > 20 * np.median(mag)
