"""Persistent artifact store: integrity, staleness, concurrency, soundness.

The load path's contract is *degrade, never lie*: a truncated entry, a
flipped bit, a schema drift (repro version, pass registry) or a racing
writer must each resolve to a clean recompile -- never an exception on
the serving path and never a wrong artifact.  Disk-loaded artifacts must
be frozen exactly like memory-cached ones, and must execute bit-identically
(values and total bytes) to fresh compiles under every schedule policy.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import (
    ArtifactStore,
    CompileService,
    CompilerOptions,
    CompilerSession,
    ExecutionEnv,
    Executor,
    Machine,
    schema_fingerprint,
)
from repro.apps.workloads import random_environment, random_legal_subroutine
from repro.compiler.pipeline import PassManager
from repro.errors import ArtifactFrozenError
from repro.store.cli import main as store_cli

REPO = Path(__file__).resolve().parent.parent

FIG16 = """
subroutine main(t)
  integer n, t
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute writes A
  do i = 1, t
!hpf$   redistribute A(cyclic)
    compute writes A reads A
!hpf$   redistribute A(block)
  enddo
  compute reads A
end
"""

FIG1 = """
subroutine main()
  integer n
  real A(n, n), B(n, n)
!hpf$ align with B :: A
!hpf$ dynamic A, B
!hpf$ distribute B(block, *)
  compute reads A, B
!hpf$ realign A(i, j) with B(j, i)
!hpf$ redistribute B(cyclic, *)
  compute reads A, B
end
"""

FIG12 = """
subroutine remap(A, m)
  integer m, n, p
  real A(n,n), B(n,n), C(n,n)
  intent inout A
!hpf$ align with A :: B, C
!hpf$ dynamic A, B, C
!hpf$ distribute A(block, *)
  compute "init" writes B reads A
  if c1 then
!hpf$   redistribute A(cyclic, *)
    compute writes A, p reads A, B
  else
!hpf$   redistribute A(block, block)
    compute writes p reads A
  endif
  do i = 1, m
!hpf$   redistribute A(*, block)
    compute writes C reads A
!hpf$   redistribute A(block, *)
    compute writes A reads A, C
  enddo
end
"""

N = 16

FIGURES = {
    "fig1": dict(
        source=FIG1,
        bindings={"n": N},
        conditions={},
        inputs={
            "a": np.arange(N * N, dtype=float).reshape(N, N),
            "b": np.ones((N, N)),
        },
    ),
    "fig12-then": dict(
        source=FIG12,
        bindings={"n": N, "m": 3},
        conditions={"c1": True},
        inputs={"a": np.arange(N * N, dtype=float).reshape(N, N)},
    ),
    "fig12-else": dict(
        source=FIG12,
        bindings={"n": N, "m": 3},
        conditions={"c1": False},
        inputs={"a": np.arange(N * N, dtype=float).reshape(N, N)},
    ),
    "fig16": dict(
        source=FIG16,
        bindings={"n": N, "t": 5},
        conditions={},
        inputs={"a": np.arange(float(N))},
    ),
}

#: every execution mode: the legacy unphased executor plus each policy
POLICIES = (None, "naive", "round-robin", "aggregate")


def _options(policy):
    return CompilerOptions(level=3, schedule=policy)


def _run(compiled, w):
    machine = Machine(compiled.processors)
    env = ExecutionEnv(
        conditions=dict(w["conditions"]),
        bindings=dict(w["bindings"]),
        inputs={k: v.copy() for k, v in w["inputs"].items()},
    )
    name = next(iter(compiled.subroutines))
    result = Executor(compiled, machine, env).run(name)
    values = {a: result.value(a) for a in compiled.get(name).sub.arrays}
    return values, machine.stats


def _store_then_load(tmp_path, w, policy, subdir="s"):
    """Compile fresh, write to a store, load back; returns both artifacts."""
    store = ArtifactStore(tmp_path / subdir)
    session = CompilerSession(processors=4, options=_options(policy), store=store)
    fresh, tier = session.compile_traced(w["source"], bindings=w["bindings"])
    assert tier == "compiled"
    key = session.cache_key(w["source"], bindings=w["bindings"])
    loaded = store.load(key)
    assert loaded is not None
    return fresh, loaded


# ---------------------------------------------------------------------------
# round trip and freezing
# ---------------------------------------------------------------------------


def test_round_trip_returns_equivalent_frozen_artifact(tmp_path):
    w = FIGURES["fig12-then"]
    fresh, loaded = _store_then_load(tmp_path, w, "round-robin")
    assert loaded is not fresh
    assert loaded.frozen
    assert loaded.options == fresh.options
    assert set(loaded.subroutines) == set(fresh.subroutines)
    with pytest.raises(ArtifactFrozenError):
        loaded.program = None
    with pytest.raises(ArtifactFrozenError):
        loaded.get("remap").code = None


def test_plan_table_round_trips_bit_for_bit(tmp_path):
    """Precompiled CommPlanTables survive the disk round trip exactly."""
    w = FIGURES["fig12-then"]
    fresh, loaded = _store_then_load(tmp_path, w, "aggregate")
    assert fresh.plans is not None and loaded.plans is not None
    assert len(loaded.plans) == len(fresh.plans) > 0
    assert loaded.plans.policy == fresh.plans.policy
    assert loaded.plans.content_digest() == fresh.plans.content_digest()
    assert [k for k, _ in loaded.plans.entries()] == [
        k for k, _ in fresh.plans.entries()
    ]
    # the loaded table is frozen: plan misses must not build into it
    assert loaded.plans.frozen
    from repro.mapping import DistFormat, Mapping, ProcessorArrangement

    p = ProcessorArrangement("P", (4,))
    src = Mapping.simple((8,), (DistFormat.block(),), p)
    dst = Mapping.simple((8,), (DistFormat.cyclic(),), p)
    with pytest.raises(ArtifactFrozenError):
        loaded.plans.build(src, dst)


def test_differential_soundness_on_figures(tmp_path):
    """Disk-loaded artifacts execute bit-identically to fresh compiles."""
    for name, w in sorted(FIGURES.items()):
        for policy in POLICIES:
            fresh, loaded = _store_then_load(
                tmp_path, w, policy, subdir=f"{name}-{policy}"
            )
            ref_values, ref_stats = _run(fresh, w)
            values, stats = _run(loaded, w)
            for a in ref_values:
                assert np.array_equal(values[a], ref_values[a]), (name, policy, a)
            assert stats.bytes == ref_stats.bytes, (name, policy)
            assert stats.local_bytes == ref_stats.local_bytes, (name, policy)
            assert stats.messages == ref_stats.messages, (name, policy)


def test_differential_soundness_on_workload_seeds(tmp_path):
    """Acceptance sweep: seeds 0..50, every policy, disk-loaded == fresh."""
    store = ArtifactStore(tmp_path / "seeds")
    for seed in range(51):
        rng = np.random.default_rng(seed)
        program = random_legal_subroutine(rng, n_arrays=2, length=5, depth=1)
        conditions, inputs = random_environment(rng, n_arrays=2)
        w = dict(bindings={}, conditions=conditions, inputs=inputs)
        for policy in POLICIES:
            session = CompilerSession(
                processors=4, options=_options(policy), store=store
            )
            fresh, tier = session.compile_traced(program)
            assert tier == "compiled"
            loaded = store.load(session.cache_key(program))
            assert loaded is not None, (seed, policy)
            ref_values, ref_stats = _run(fresh, w)
            values, stats = _run(loaded, w)
            for a in ref_values:
                assert np.array_equal(values[a], ref_values[a]), (seed, policy, a)
            assert stats.bytes == ref_stats.bytes, (seed, policy)


# ---------------------------------------------------------------------------
# corruption and staleness: every defect degrades to a clean recompile
# ---------------------------------------------------------------------------


def _populate(tmp_path, subdir="c"):
    store = ArtifactStore(tmp_path / subdir)
    session = CompilerSession(processors=4, options=_options(None), store=store)
    w = FIGURES["fig16"]
    session.compile(w["source"], bindings=w["bindings"])
    key = session.cache_key(w["source"], bindings=w["bindings"])
    path = store.entry_path(key)
    assert path.is_file()
    return store, key, path, w


def test_truncated_entry_degrades_to_recompile(tmp_path):
    store, key, path, w = _populate(tmp_path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    assert store.load(key) is None
    assert not path.exists(), "corrupt entry must be evicted"
    assert store.stats["corrupt_evicted"] == 1
    # a store-backed session recompiles cleanly (miss, not an exception)
    session = CompilerSession(processors=4, options=_options(None), store=store)
    compiled, tier = session.compile_traced(w["source"], bindings=w["bindings"])
    assert tier == "compiled"
    values, _ = _run(compiled, w)
    assert values  # executed fine


def test_digest_mismatch_degrades_to_recompile(tmp_path):
    store, key, path, _ = _populate(tmp_path)
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF  # flip one payload bit; header length still matches
    path.write_bytes(bytes(blob))
    assert store.load(key) is None
    assert not path.exists()
    assert store.stats["corrupt_evicted"] == 1


def test_garbage_header_degrades_to_recompile(tmp_path):
    store, key, path, _ = _populate(tmp_path)
    path.write_bytes(b"\x80\x05not a header\n" + b"\x00" * 64)
    assert store.load(key) is None
    assert not path.exists()


def test_pass_registry_change_invalidates_old_entries(tmp_path):
    """Entries written under a different pass registry are stale, not served."""
    store, key, path, w = _populate(tmp_path)
    old_fingerprint = store.fingerprint

    class _ProbePass:
        name = "pr5-store-probe"
        requires: tuple[str, ...] = ()
        provides: tuple[str, ...] = ("pr5-store-probe",)

        def run(self, ctx):
            return {}

    PassManager.register("pr5-store-probe", _ProbePass)
    try:
        assert schema_fingerprint() != old_fingerprint
        fresh_store = ArtifactStore(tmp_path / "c")
        # same key, new schema generation: the old entry is invisible
        assert fresh_store.load(key) is None
        session = CompilerSession(
            processors=4, options=_options(None), store=fresh_store
        )
        compiled, tier = session.compile_traced(w["source"], bindings=w["bindings"])
        assert tier == "compiled"
        # gc drops the stale generation's directory wholesale
        report = fresh_store.gc()
        assert report["stale_fingerprints_removed"] == 1
        assert not path.exists()
    finally:
        del PassManager._registry["pr5-store-probe"]


def test_lru_eviction_bounds_store_size(tmp_path):
    store, key, path, w = _populate(tmp_path)
    entry_size = path.stat().st_size
    small = ArtifactStore(tmp_path / "c", max_bytes=int(entry_size * 1.5))
    # touch the existing entry (recent), then write a second one: budget
    # holds at most one, so the older entry is evicted
    assert small.load(key) is not None
    session = CompilerSession(processors=4, options=_options(None), store=small)
    w2 = FIGURES["fig1"]
    session.compile(w2["source"], bindings=w2["bindings"])
    assert small.entry_count == 1
    assert small.total_bytes <= small.max_bytes
    assert small.stats["lru_evicted"] == 1


def test_gc_never_touches_non_store_directories(tmp_path):
    """The store root is a user-supplied path: gc removes only
    fingerprint-shaped generation directories, never anything else."""
    root = tmp_path / "shared"
    precious = root / "my_precious_data"
    precious.mkdir(parents=True)
    (precious / "file.txt").write_text("irreplaceable")
    stale = root / ("0" * 16)  # fingerprint-shaped: a stale generation
    stale.mkdir()
    (stale / "x.art").write_bytes(b"old entry")
    store = ArtifactStore(root)
    report = store.gc()
    assert report["stale_fingerprints_removed"] == 1
    assert not stale.exists()
    assert (precious / "file.txt").read_text() == "irreplaceable"


def test_fingerprint_covers_package_source(tmp_path):
    """The schema fingerprint must reflect the package's own code, not
    just pass names: a bug fix inside an existing pass has to orphan
    artifacts the old code compiled."""
    from repro.store import store as store_mod

    baseline = schema_fingerprint()
    original = store_mod.source_tree_digest()
    store_mod._source_tree_digest_cache = "f" * 12  # simulate edited source
    try:
        assert schema_fingerprint() != baseline
    finally:
        store_mod._source_tree_digest_cache = original
    assert schema_fingerprint() == baseline


def test_gc_sweeps_orphan_locks_and_sidecars(tmp_path):
    """Per-entry lock files and binding-names sidecars whose entries are
    gone are debris: gc removes them, so the store directory is bounded
    by its *live* content, not by everything ever written."""
    store, key, path, _ = _populate(tmp_path, subdir="gcdebris")
    lock = path.with_suffix(".lock")
    assert lock.exists()
    sidecars = list(path.parent.glob("names-*.json"))
    assert sidecars, "populate should have recorded binding names"
    # while the entry lives, gc keeps its lock and sidecar
    report = store.gc()
    assert report["lock_files_removed"] == 0
    assert report["sidecars_removed"] == 0
    # drop the entry (as corruption eviction would); the debris follows
    path.unlink()
    (path.parent / "gc.lock").touch()  # the eviction guard, once created
    report = store.gc()
    assert report["lock_files_removed"] == 1
    assert report["sidecars_removed"] == len(sidecars)
    assert not lock.exists()
    assert not list(path.parent.glob("names-*.json"))
    # the gc guard lock itself is never swept
    assert (path.parent / "gc.lock").exists()


# ---------------------------------------------------------------------------
# cross-process: binding-name sidecars and racing writers
# ---------------------------------------------------------------------------

_WORKER = r"""
import sys, time
sys.path.insert(0, {src!r})
from repro import ArtifactStore, CompilerOptions, CompilerSession

FIG16 = {fig16!r}
store = ArtifactStore({root!r})
session = CompilerSession(
    processors=4, options=CompilerOptions(level=3, schedule="round-robin"),
    store=store,
)
compiled, tier = session.compile_traced(FIG16, bindings={{"n": 16, "t": 3}})
print(tier, session.cache_key(FIG16, bindings={{"n": 16, "t": 3}}) ==
      session.cache_key(FIG16, bindings={{"n": 16, "t": 9}}))
"""


def _spawn_worker(tmp_path):
    code = _WORKER.format(
        src=str(REPO / "src"), fig16=FIG16, root=str(tmp_path / "xproc")
    )
    return subprocess.Popen(
        [sys.executable, "-c", code],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def test_two_processes_racing_on_one_key(tmp_path):
    """Two real processes compile-and-store the same key concurrently;
    afterwards the entry is valid and a third (in-process) consumer is
    served from disk with bit-identical execution."""
    procs = [_spawn_worker(tmp_path) for _ in range(2)]
    outs = [p.communicate(timeout=120) for p in procs]
    for p, (out, err) in zip(procs, outs):
        assert p.returncode == 0, err
        tier, keys_equal = out.split()
        # a worker that starts after the other has published the entry is
        # legitimately served from disk; what must never happen is a
        # memory hit (the processes share no memory)
        assert tier in ("compiled", "disk")
        # the runtime-only binding `t` is excluded from the key, so the
        # sidecar-refined key matches across binding variants
        assert keys_equal == "True"
    store = ArtifactStore(tmp_path / "xproc")
    assert store.verify(evict=False)["corrupt"] == 0
    session = CompilerSession(
        processors=4,
        options=CompilerOptions(level=3, schedule="round-robin"),
        store=store,
    )
    w = FIGURES["fig16"]
    loaded, tier = session.compile_traced(w["source"], bindings=w["bindings"])
    assert tier == "disk"
    fresh = CompilerSession(
        processors=4, options=CompilerOptions(level=3, schedule="round-robin")
    ).compile(w["source"], bindings=w["bindings"])
    ref_values, ref_stats = _run(fresh, w)
    values, stats = _run(loaded, w)
    for a in ref_values:
        assert np.array_equal(values[a], ref_values[a])
    assert stats.bytes == ref_stats.bytes


def test_fresh_process_refines_keys_from_sidecar(tmp_path):
    """A fresh session adopts recorded binding names before its first
    lookup, so runtime-only binding variants are disk hits, not misses."""
    p = _spawn_worker(tmp_path)
    out, err = p.communicate(timeout=120)
    assert p.returncode == 0, err
    store = ArtifactStore(tmp_path / "xproc")
    session = CompilerSession(
        processors=4,
        options=CompilerOptions(level=3, schedule="round-robin"),
        store=store,
    )
    # different runtime-only trip count than the writer used
    compiled, tier = session.compile_traced(FIG16, bindings={"n": 16, "t": 11})
    assert tier == "disk"
    assert session.stats["store_hits"] == 1
    assert session.stats["passes_run"] == 0
    # the wrapper carries *this* caller's bindings
    assert compiled.get("main").sub.bindings.get("t") == 11


# ---------------------------------------------------------------------------
# session and service integration
# ---------------------------------------------------------------------------


def test_session_tier_order_memory_disk_compile(tmp_path):
    store = ArtifactStore(tmp_path / "tiers")
    w = FIGURES["fig16"]
    s1 = CompilerSession(processors=4, options=_options(None), store=store)
    assert s1.compile_traced(w["source"], bindings=w["bindings"])[1] == "compiled"
    assert s1.compile_traced(w["source"], bindings=w["bindings"])[1] == "memory"
    assert s1.stats["store_writes"] == 1
    # a restarted session (same store, empty memory) is served from disk,
    # and from memory afterwards
    s2 = CompilerSession(processors=4, options=_options(None), store=store)
    assert s2.compile_traced(w["source"], bindings=w["bindings"])[1] == "disk"
    assert s2.compile_traced(w["source"], bindings=w["bindings"])[1] == "memory"
    assert s2.stats["store_hits"] == 1
    assert s2.stats["passes_run"] == 0


def test_evicted_source_can_readopt_sidecar_names(tmp_path):
    """LRU eviction must not wedge the disk tier: after a source's memory
    entry (and learned binding names) are evicted, the next compile
    re-reads the sidecar, refines its key, and is served from disk."""
    store = ArtifactStore(tmp_path / "evict")
    session = CompilerSession(
        processors=4, options=_options(None), store=store, max_entries=1
    )
    w16, w1 = FIGURES["fig16"], FIGURES["fig1"]
    assert session.compile_traced(w16["source"], bindings=w16["bindings"])[1] == "compiled"
    # distinct source evicts fig16's entry and its learned binding names
    assert session.compile_traced(w1["source"], bindings=w1["bindings"])[1] == "compiled"
    assert session.cache_size == 1
    # same source, different runtime-only trip count: must be a disk hit
    # (the sidecar-refined key excludes "t"), not a full recompile
    bindings = dict(w16["bindings"], t=9)
    compiled, tier = session.compile_traced(w16["source"], bindings=bindings)
    assert tier == "disk"
    assert compiled.get("main").sub.bindings.get("t") == 9


def test_service_warm_starts_from_store(tmp_path):
    """A restarted service serves identical requests from disk: cache
    provenance is per-request (`cache_source`) and aggregate
    (`store_hits`), and results match the first service's bit-for-bit."""
    w = FIGURES["fig12-then"]
    request = {
        "source": w["source"],
        "bindings": w["bindings"],
        "conditions": w["conditions"],
        "inputs": w["inputs"],
    }
    with CompileService(
        processors=4, workers=2, store=tmp_path / "svc"
    ) as svc:
        first = svc.run_batch([request, request])
        assert [r.cache_source for r in first if not r.deduped][0] == "compiled"
        ref = first[0].value("a")
    # "restart": a new service over a new pool, same store directory
    with CompileService(
        processors=4, workers=2, store=tmp_path / "svc"
    ) as svc2:
        second = svc2.run_batch([request])
        assert second[0].ok
        assert second[0].cache_source == "disk"
        assert second[0].cached and not second[0].deduped
        assert np.array_equal(second[0].value("a"), ref)
        snap = svc2.stats.snapshot()
        assert snap["store_hits"] == 1
        assert snap["compile_misses"] == 0
        assert svc2.pool.stats["store_hits"] == 1
        assert svc2.pool.stats["passes_run"] == 0


def test_service_without_store_reports_sources(tmp_path):
    w = FIGURES["fig16"]
    request = {"source": w["source"], "bindings": w["bindings"]}
    with CompileService(processors=4, workers=2) as svc:
        results = svc.run_batch([request, request, request])
        sources = sorted(r.cache_source for r in results if not r.deduped)
        deduped = [r for r in results if r.deduped]
        # one real compile; the rest are memory hits or single-flight waits
        assert sources.count("compiled") == 1
        assert set(sources) <= {"compiled", "memory"}
        assert all(r.cache_source == "compiled" for r in deduped)
        snap = svc.stats.snapshot()
        assert snap["store_hits"] == 0
        assert (
            snap["compile_hits"] + snap["compile_misses"] + snap["dedup_saves"]
            == snap["completed"]
        )


def test_service_rejects_store_with_explicit_pool(tmp_path):
    from repro import SessionPool

    with pytest.raises(ValueError):
        CompileService(pool=SessionPool(shards=2), store=tmp_path / "x")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_refuses_missing_store_dir(tmp_path, capsys):
    """Management commands inspect; they must not conjure an empty store
    out of a typo'd path and report it healthy."""
    missing = tmp_path / "no-such-store"
    assert store_cli(["verify", "--dir", str(missing)]) == 2
    assert store_cli(["stats", "--dir", str(missing)]) == 2
    assert not missing.exists(), "read-only CLI must not create directories"
    capsys.readouterr()


def test_cli_stats_gc_verify(tmp_path, capsys):
    store, key, path, _ = _populate(tmp_path, subdir="cli")
    root = str(tmp_path / "cli")
    assert store_cli(["stats", "--dir", root]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == 1 and stats["total_bytes"] > 0
    assert store_cli(["verify", "--dir", root]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report == {
        "entries": 1,
        "ok": 1,
        "corrupt": 0,
        "invariant_violations": 0,
    }
    # corrupt the entry: verify reports (and evicts) it, exit code 1
    blob = path.read_bytes()
    path.write_bytes(blob[:-3])
    assert store_cli(["verify", "--dir", root]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["corrupt"] == 1
    assert not path.exists()
    assert store_cli(["gc", "--dir", root]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["entries_after"] == 0
