"""Tests for remapping-graph construction (paper Sec. 3, Appendix B).

The main fixtures are the paper's own figures: Figure 10's routine (whose
graph is Figure 11), the legality examples of Figures 5/6/21, and the
call-handling examples of Figures 4/8/15/23.
"""

from __future__ import annotations

import pytest

from repro.errors import AmbiguousMappingError, MultipleLeavingMappingsError
from repro.ir.cfg import NodeKind, build_cfg
from repro.ir.effects import Use
from repro.lang import parse_program, resolve_program
from repro.mapping import ProcessorArrangement
from repro.remap import build_remapping_graph

P4 = ProcessorArrangement("P", (4,))


def construct(src: str, bindings=None, procs=P4, sub_name: str | None = None):
    prog = resolve_program(
        parse_program(src), bindings=bindings or {"n": 16}, default_processors=procs
    )
    name = sub_name or next(iter(prog.subroutines))
    sub = prog.get(name)
    return build_remapping_graph(build_cfg(sub), prog)


# ---------------------------------------------------------------------------
# Figure 10 / Figure 11: the running example
# ---------------------------------------------------------------------------

FIG10 = """
subroutine remap(A, m)
  integer m, n, p
  real A(n,n), B(n,n), C(n,n)
  intent inout A
!hpf$ align with A :: B, C
!hpf$ dynamic A, B, C
!hpf$ distribute A(block, *)
  compute "init" writes B reads A
  if c1 then
!hpf$   redistribute A(cyclic, *)
    compute writes A, p reads A, B
  else
!hpf$   redistribute A(block, block)
    compute writes p reads A
  endif
  do i = 1, m
!hpf$   redistribute A(*, block)
    compute writes C reads A
!hpf$   redistribute A(block, *)
    compute writes A reads A, C
  enddo
end
"""


@pytest.fixture(scope="module")
def fig10():
    return construct(FIG10, procs=ProcessorArrangement("P", (2, 2)))


def test_fig10_seven_vertices(fig10):
    # four remapping statements + v_c + v_0 + v_e = 7 (paper Sec. 3.3)
    assert len(fig10.graph.vertices) == 7


def test_fig10_four_versions_of_each_array(fig10):
    # block-row, cyclic-row, block-block, block-col mappings
    assert fig10.versions.count("a") == 4
    assert fig10.versions.count("b") == 4
    assert fig10.versions.count("c") == 4


def test_fig10_aligned_arrays_all_remapped_together(fig10):
    remaps = [
        v for v in fig10.graph.vertices.values() if v.kind is NodeKind.REMAP
    ]
    assert len(remaps) == 4
    for v in remaps:
        assert v.S == {"a", "b", "c"}


def test_fig10_use_information(fig10):
    g = fig10.graph
    remaps = sorted(
        (v for v in g.vertices.values() if v.kind is NodeKind.REMAP),
        key=lambda v: v.cfg_id,
    )
    v1, v2, v3, v4 = remaps  # cyclic / block-block / col-block / row-block
    # vertex 1 (then branch): A written and read, B read, C never used
    assert v1.U["a"] is Use.W
    assert v1.U["b"] is Use.R
    assert v1.U["c"] is Use.N
    # vertex 2 (else branch): only A read
    assert v2.U["a"] is Use.R
    assert v2.U["b"] is Use.N
    assert v2.U["c"] is Use.N
    # vertex 3 (loop top): C written, A read
    assert v3.U["a"] is Use.R
    assert v3.U["c"] is Use.W
    assert v3.U["b"] is Use.N
    # vertex 4 (loop bottom): A written+read, C read; loop may exit to v_e
    assert v4.U["a"] is Use.W
    assert v4.U["c"] is Use.R


def test_fig10_loop_zero_trip_edges(fig10):
    """Paper: 'the loop nest may have no iteration, thus the remappings within
    may be skipped' -- the branch vertices must have edges to v_e (via skip)."""
    g = fig10.graph
    v_e = fig10.cfg.exit
    remaps = sorted(
        (v for v in g.vertices.values() if v.kind is NodeKind.REMAP),
        key=lambda v: v.cfg_id,
    )
    v1, v2, v3, v4 = remaps
    # A must be restored at exit (dummy), reachable directly from the branch
    # remaps when the loop body never executes
    assert v_e in g.succs(v1.cfg_id, "a")
    assert v_e in g.succs(v2.cfg_id, "a")
    assert v_e in g.succs(v4.cfg_id, "a")
    # and from inside the loop to its own top (back edge path)
    assert v3.cfg_id in g.succs(v4.cfg_id, "a")
    assert v4.cfg_id in g.succs(v3.cfg_id, "a")


def test_fig10_reaching_copies(fig10):
    g = fig10.graph
    remaps = sorted(
        (v for v in g.vertices.values() if v.kind is NodeKind.REMAP),
        key=lambda v: v.cfg_id,
    )
    v1, v2, v3, v4 = remaps
    # the loop-top remap may be reached from either branch or the loop bottom
    assert v3.R["a"] == {v1.L["a"], v2.L["a"], v4.L["a"]}
    # the branch remaps are reached only by the initial mapping
    assert v1.R["a"] == {0}
    assert v2.R["a"] == {0}


def test_fig10_exit_restores_dummy(fig10):
    g = fig10.graph
    v_e = g.vertices[fig10.cfg.exit]
    assert "a" in v_e.S
    assert v_e.L["a"] == 0
    # locals need no exit remapping
    assert "b" not in v_e.S and "c" not in v_e.S


def test_fig10_references_annotated(fig10):
    # every compute sees exactly one version of each referenced array
    assert fig10.stmt_versions  # non-empty
    for ann in fig10.stmt_versions.values():
        for a, v in ann.items():
            assert 0 <= v < fig10.versions.count(a)


# ---------------------------------------------------------------------------
# legality: Figures 5, 6, 21
# ---------------------------------------------------------------------------


def test_fig5_ambiguous_reference_rejected():
    src = """
subroutine s()
  integer n
  real A(n, n)
!hpf$ template T1(n, n)
!hpf$ template T2(n, n)
!hpf$ align A with T1
!hpf$ dynamic A
!hpf$ distribute T1(block, *)
!hpf$ distribute T2(block, *)
  compute reads A
  if c then
!hpf$   realign A with T2
    compute reads A
  endif
!hpf$ redistribute T2(cyclic, *)
  compute reads A
end
"""
    with pytest.raises((AmbiguousMappingError, MultipleLeavingMappingsError)):
        construct(src)


def test_fig6_ambiguous_state_without_reference_accepted():
    src = """
subroutine s()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute reads A
  if c then
!hpf$   redistribute A(cyclic)
    compute reads A
  endif
!hpf$ redistribute A(cyclic)
  compute reads A
end
"""
    res = construct(src)  # must not raise
    # the final redistribute is reached by both block and cyclic
    g = res.graph
    final = [
        v
        for v in g.vertices.values()
        if v.kind is NodeKind.REMAP and len(v.R.get("a", ())) == 2
    ]
    assert len(final) == 1


def test_fig6_like_reference_in_ambiguous_state_rejected():
    src = """
subroutine s()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  if c then
!hpf$   redistribute A(cyclic)
  endif
  compute reads A
end
"""
    with pytest.raises(AmbiguousMappingError):
        construct(src)


def test_fig21_multiple_leaving_mappings_rejected():
    src = """
subroutine s()
  integer n
  real A(n, n)
!hpf$ template T(n, n)
!hpf$ align A(i, j) with T(i, j)
!hpf$ dynamic A
!hpf$ distribute T(block, block)
  if c then
!hpf$   realign A(i, j) with T(j, i)
  endif
!hpf$ redistribute T(block, block)
  compute reads A
end
"""
    with pytest.raises((MultipleLeavingMappingsError, AmbiguousMappingError)):
        construct(src, procs=ProcessorArrangement("P", (2, 2)))


def test_redistribute_to_same_mapping_is_noop_vertex():
    src = """
subroutine s()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute reads A
!hpf$ redistribute A(block)
  compute reads A
end
"""
    res = construct(src)
    remaps = [v for v in res.graph.vertices.values() if v.kind is NodeKind.REMAP]
    assert all(not v.S for v in remaps) or not remaps


# ---------------------------------------------------------------------------
# figure 2: remap and back
# ---------------------------------------------------------------------------


def test_fig2_remap_back_creates_two_vertices():
    src = """
subroutine s()
  integer n
  real B(n, n), C(n, n)
!hpf$ template T(n, n)
!hpf$ align B with T
!hpf$ align C(i, j) with T(j, i)
!hpf$ dynamic B, C
!hpf$ distribute T(block, *)
  compute reads B, C
!hpf$ redistribute T(cyclic, *)
  compute reads B
!hpf$ redistribute T(block, *)
  compute reads B, C
end
"""
    res = construct(src)
    g = res.graph
    remaps = sorted(
        (v for v in g.vertices.values() if v.kind is NodeKind.REMAP),
        key=lambda v: v.cfg_id,
    )
    assert len(remaps) == 2
    # C is remapped at both, back to its initial mapping at the second
    assert remaps[1].L["c"] == 0
    # C is unused between the remappings: N at the first vertex
    assert remaps[0].U["c"] is Use.N
    assert remaps[0].U["b"] is Use.R


# ---------------------------------------------------------------------------
# calls: figures 4, 8, 22, 23
# ---------------------------------------------------------------------------

FIG4 = """
subroutine foo(X)
  integer n
  real X(n)
  intent in X
!hpf$ distribute X(cyclic)
end

subroutine bla(X)
  integer n
  real X(n)
  intent in X
!hpf$ distribute X(cyclic)
end

subroutine main()
  integer n
  real Y(n)
!hpf$ dynamic Y
!hpf$ distribute Y(block)
  compute writes Y
  call foo(Y)
  call foo(Y)
  call bla(Y)
  compute reads Y
end
"""


@pytest.fixture(scope="module")
def fig4():
    return construct(FIG4, sub_name="main")


def test_fig4_call_sites_expand_to_vb_va(fig4):
    kinds = [v.kind for v in fig4.graph.vertices.values()]
    assert kinds.count(NodeKind.CALL_BEFORE) >= 1
    assert kinds.count(NodeKind.CALL_AFTER) >= 1


def test_fig4_vb_remaps_to_dummy_mapping(fig4):
    g = fig4.graph
    vbs = sorted(
        (v for v in g.vertices.values() if v.kind is NodeKind.CALL_BEFORE),
        key=lambda v: v.cfg_id,
    )
    # first v_b: block -> cyclic
    assert vbs[0].R["y"] == {0}
    assert vbs[0].L["y"] == 1
    # intent(in): the callee only reads the argument
    assert vbs[0].U["y"] is Use.R


def test_fig4_va_restores_and_is_unused_between_calls(fig4):
    g = fig4.graph
    vas = sorted(
        (v for v in g.vertices.values() if v.kind is NodeKind.CALL_AFTER),
        key=lambda v: v.cfg_id,
    )
    assert len(vas) == 3
    # between consecutive calls Y is not referenced: the restore is useless
    assert vas[0].U["y"] is Use.N
    assert vas[1].U["y"] is Use.N
    # after the last call Y is read: the restore is useful
    assert vas[2].U["y"] is Use.R
    assert vas[2].L["y"] == 0


def test_fig4_intermediate_vb_noop(fig4):
    g = fig4.graph
    vbs = sorted(
        (v for v in g.vertices.values() if v.kind is NodeKind.CALL_BEFORE),
        key=lambda v: v.cfg_id,
    )
    # second and third v_b still appear (restore happened in between)
    assert len(vbs) == 3


def test_intent_out_gives_D_call_effect():
    src = """
subroutine init(X)
  integer n
  real X(n)
  intent out X
!hpf$ distribute X(cyclic)
end

subroutine main()
  integer n
  real Y(n)
!hpf$ dynamic Y
!hpf$ distribute Y(block)
  call init(Y)
  compute reads Y
end
"""
    res = construct(src, sub_name="main")
    vbs = [
        v
        for v in res.graph.vertices.values()
        if v.kind is NodeKind.CALL_BEFORE and "y" in v.S
    ]
    assert len(vbs) == 1
    # intent(out): the callee fully redefines the argument -> D: the copy-in
    # at v_b needs no communication
    assert vbs[0].U["y"] is Use.D


def test_entry_exit_vertices_present(fig10):
    g = fig10.graph
    kinds = {v.kind for v in g.vertices.values()}
    assert NodeKind.CALLV in kinds
    assert NodeKind.ENTRY in kinds
    assert NodeKind.EXIT in kinds
    v_c = g.vertices[fig10.cfg.entry]
    assert v_c.S == {"a"}  # dummies produced at v_c
    v_0 = next(v for v in g.vertices.values() if v.kind is NodeKind.ENTRY)
    assert v_0.S == {"b", "c"}  # locals produced at v_0


def test_local_unreferenced_array_U_is_N():
    src = """
subroutine s()
  integer n
  real A(n), Z(n)
!hpf$ distribute A(block)
!hpf$ distribute Z(block)
  compute reads A
end
"""
    res = construct(src)
    v_0 = next(
        v for v in res.graph.vertices.values() if v.kind is NodeKind.ENTRY
    )
    assert v_0.U["z"] is Use.N
    assert v_0.U["a"] is Use.R
