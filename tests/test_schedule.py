"""The communication-schedule subsystem: phases, policies, plans.

Four layers of guarantees:

* **structure** -- round-robin phases satisfy the one-port property (no
  rank sends or receives twice in a phase), schedules are exact covers,
  aggregation never increases the message count, empty transfers and
  purely local schedules produce no phases (property-tested over random
  mapping pairs);
* **differential soundness** -- on the paper figures and workload seeds
  0..200, scheduled execution produces bit-identical array values and
  identical total bytes to the unscheduled executor, under every policy;
* **performance shape** -- on the benchmarked redistribution patterns,
  round-robin makespan never exceeds the naive all-at-once makespan;
* **plan caching** -- the ``schedule`` pass precompiles every plan into
  the artifact, warm session hits replay them with zero scheduling work,
  and different policies never share cached artifacts.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CompilerOptions,
    CompilerSession,
    CostModel,
    ExecutionEnv,
    Executor,
    Machine,
    compile_program,
    predict_traffic,
)
from repro.apps.workloads import random_environment, random_legal_subroutine
from repro.errors import ScheduleError
from repro.mapping import (
    Alignment,
    AxisAlign,
    DistFormat,
    Distribution,
    Mapping,
    ProcessorArrangement,
    Template,
)
from repro.mapping.ownership import layout_of
from repro.spmd import (
    CommPlanTable,
    DistributedArray,
    Message,
    TrafficEstimate,
    build_comm_schedule,
    build_schedule,
    plan_redistribution,
    scheduled_redistribute,
)
from repro.spmd.redistribution import RedistSchedule, Transfer, redistribute
from repro.util.intervals import IntervalSet

COST = CostModel()
SCHEDULED = ("naive", "round-robin", "aggregate")


def mk(shape, fmts, procs, name="A"):
    return Mapping.simple(shape, fmts, procs, name)


@pytest.fixture
def p4():
    return ProcessorArrangement("P", (4,))


# ---------------------------------------------------------------------------
# the machine's phase clock
# ---------------------------------------------------------------------------


def test_run_phase_contention_free_costs_largest_message(p4):
    mach = Machine(p4, cost=CostModel(alpha=1.0, beta=0.0))
    d = mach.run_phase(
        [Message(0, 1, nbytes=8, elements=1), Message(2, 3, nbytes=800, elements=100)]
    )
    assert d == pytest.approx(1.0)
    assert mach.elapsed == pytest.approx(1.0)
    assert mach.stats.phases == 1
    assert mach.stats.messages == 2
    assert mach.phase_seconds == pytest.approx(1.0)


def test_run_phase_contended_serializes_the_busiest_port(p4):
    mach = Machine(p4, cost=CostModel(alpha=1.0, beta=0.0))
    msgs = [Message(0, 1, 8, 1), Message(0, 2, 8, 1), Message(3, 1, 8, 1)]
    d = mach.run_phase(msgs, contended=True)
    # rank 0 sends twice and rank 1 receives twice: two serialized slots
    assert d == pytest.approx(2.0)
    assert mach.elapsed == pytest.approx(2.0)


def test_run_phase_rejects_one_port_violations(p4):
    mach = Machine(p4)
    with pytest.raises(ScheduleError):
        mach.run_phase([Message(0, 1, 8, 1), Message(0, 2, 8, 1)])
    with pytest.raises(ScheduleError):
        mach.run_phase([Message(0, 1, 8, 1), Message(2, 1, 8, 1)])
    with pytest.raises(ScheduleError):
        mach.run_phase([Message(1, 1, 8, 1)])  # local copies are not messages


def test_run_phase_empty_is_free(p4):
    mach = Machine(p4)
    assert mach.run_phase([]) == 0.0
    assert mach.stats.phases == 0
    assert mach.elapsed == 0.0


# ---------------------------------------------------------------------------
# plan construction: policies and edge cases
# ---------------------------------------------------------------------------


def test_same_mapping_has_no_phases(p4):
    m = mk((16,), (DistFormat.block(),), p4)
    for policy in SCHEDULED:
        plan = plan_redistribution(m, m, policy)
        assert plan.phase_count == 0
        assert plan.message_count == 0
        assert plan.local_count == 4  # per-rank local copies only


def test_zero_element_transfers_produce_no_phases():
    empty = Transfer(0, 1, (IntervalSet.empty(),))
    sched = RedistSchedule([empty])
    for policy in SCHEDULED:
        plan = build_comm_schedule(sched, policy)
        assert plan.phase_count == 0
        assert plan.message_count == 0
        assert plan.local_count == 0


def test_replication_aware_local_copies_produce_no_phases():
    """A receiver already holding a source replica copies locally: the
    scheduler must not synthesize phases (or messages) for it."""
    procs = ProcessorArrangement("P", (2, 2))
    t = Template("T", (8, 2))
    dist = Distribution(t, (DistFormat.block(), DistFormat.block()), procs)
    src_m = Mapping(
        Alignment((8,), t, (AxisAlign.dim(0), AxisAlign.replicate())), dist
    )
    dst_m = Mapping(
        Alignment((8,), t, (AxisAlign.dim(0), AxisAlign.const(1))), dist
    )
    for policy in SCHEDULED:
        plan = plan_redistribution(src_m, dst_m, policy)
        assert plan.phase_count == 0
        assert plan.message_count == 0
        assert plan.local_count > 0
        mach = Machine(procs)
        s = DistributedArray("A", src_m, mach)
        d = DistributedArray("A", dst_m, mach)
        s.scatter_from_global(np.arange(8.0))
        scheduled_redistribute(s, d, mach, policy=policy, plan=plan)
        assert np.array_equal(d.gather_to_global(), np.arange(8.0))
        assert mach.stats.messages == 0
        assert mach.stats.phases == 0


def test_pinned_mapping_scheduled_delivery():
    """Remapping between pinned slices goes through real phased messages."""
    procs = ProcessorArrangement("P", (2, 2))
    t = Template("T", (8, 2))
    dist = Distribution(t, (DistFormat.block(), DistFormat.block()), procs)
    src_m = Mapping(
        Alignment((8,), t, (AxisAlign.dim(0), AxisAlign.const(0))), dist
    )
    dst_m = Mapping(
        Alignment((8,), t, (AxisAlign.dim(0), AxisAlign.const(1))), dist
    )
    data = np.arange(8.0)
    for policy in SCHEDULED:
        plan = plan_redistribution(src_m, dst_m, policy)
        plan.validate()
        assert plan.message_count > 0
        mach = Machine(procs)
        s = DistributedArray("A", src_m, mach)
        d = DistributedArray("A", dst_m, mach)
        s.scatter_from_global(data)
        scheduled_redistribute(s, d, mach, policy=policy, plan=plan)
        assert np.array_equal(d.gather_to_global(), data)
        assert mach.stats.phases == plan.phase_count


def test_unknown_policy_rejected(p4):
    m = mk((16,), (DistFormat.block(),), p4)
    with pytest.raises(ScheduleError):
        plan_redistribution(m, m, "caterpillar-deluxe")
    with pytest.raises(ValueError):
        CompilerOptions(schedule="caterpillar-deluxe")


def test_aggregate_coalesces_pairs_into_one_message(p4):
    # block spans several cyclic(2) periods: multiple runs per pair
    src = mk((64,), (DistFormat.block(),), p4)
    dst = mk((64,), (DistFormat.cyclic(2),), p4)
    rr = plan_redistribution(src, dst, "round-robin")
    agg = plan_redistribution(src, dst, "aggregate")
    assert agg.message_count < rr.message_count
    pairs = {
        (t.src_rank, t.dst_rank)
        for p in agg.phases
        for t in p.transfers
    }
    assert agg.message_count == len(pairs)  # exactly one message per pair
    assert agg.moved_elements == rr.moved_elements


# ---------------------------------------------------------------------------
# property tests over random mapping pairs
# ---------------------------------------------------------------------------

fmt_1d = st.one_of(
    st.just(DistFormat.block()),
    st.builds(DistFormat.cyclic, st.one_of(st.none(), st.integers(1, 3))),
)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 40),
    f_src=fmt_1d,
    f_dst=fmt_1d,
    nprocs=st.integers(1, 5),
    policy=st.sampled_from(SCHEDULED),
)
def test_prop_schedule_structure(n, f_src, f_dst, nprocs, policy):
    """One-port rounds, exact cover, aggregation floor -- any mapping pair."""
    procs = ProcessorArrangement("P", (nprocs,))
    src = mk((n,), (f_src,), procs)
    dst = mk((n,), (f_dst,), procs)
    redist = build_schedule(layout_of(src), layout_of(dst))
    plan = build_comm_schedule(redist, policy)
    plan.validate()  # no rank sends or receives twice in any phase

    # exact cover: every element a receiver owns arrives exactly once,
    # counting both local copies and phased messages
    delivered: dict[tuple[int, int], int] = {}
    for t in plan.local_transfers:
        for i in t.index_sets[0]:
            key = (t.dst_rank, i)
            delivered[key] = delivered.get(key, 0) + 1
    for phase in plan.phases:
        for pt in phase.transfers:
            for part in pt.parts:
                for i in part.index_sets[0]:
                    key = (pt.dst_rank, i)
                    delivered[key] = delivered.get(key, 0) + 1
    dst_l = layout_of(dst)
    expected = {
        (dst_l.procs.linear_rank(q), i)
        for q in dst_l.holders()
        for i in dst_l.owned(q)[0]
    }
    assert set(delivered) == expected
    assert all(c == 1 for c in delivered.values())

    # bytes are policy-independent; aggregation only reduces messages
    assert plan.moved_elements == redist.moved_elements()
    if policy == "aggregate":
        rr = build_comm_schedule(redist, "round-robin")
        assert plan.message_count <= rr.message_count
        assert plan.moved_elements == rr.moved_elements


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 40),
    f_src=fmt_1d,
    f_dst=fmt_1d,
    nprocs=st.integers(1, 5),
    policy=st.sampled_from(SCHEDULED),
)
def test_prop_scheduled_execution_matches_unscheduled(
    n, f_src, f_dst, nprocs, policy
):
    """Scheduled data movement is bit-identical with identical bytes."""
    procs = ProcessorArrangement("P", (nprocs,))
    data = np.random.default_rng(7).normal(size=n)

    ref_mach = Machine(procs)
    s0 = DistributedArray("A", mk((n,), (f_src,), procs), ref_mach)
    d0 = DistributedArray("A", mk((n,), (f_dst,), procs), ref_mach)
    s0.scatter_from_global(data)
    redistribute(s0, d0, ref_mach)

    mach = Machine(procs)
    s = DistributedArray("A", mk((n,), (f_src,), procs), mach)
    d = DistributedArray("A", mk((n,), (f_dst,), procs), mach)
    s.scatter_from_global(data)
    scheduled_redistribute(s, d, mach, policy=policy)

    assert np.array_equal(d.gather_to_global(), d0.gather_to_global())
    assert mach.stats.bytes == ref_mach.stats.bytes
    assert mach.stats.local_bytes == ref_mach.stats.local_bytes


# ---------------------------------------------------------------------------
# the performance invariant, on the benchmarked redistribution family
# ---------------------------------------------------------------------------


def _benchmark_patterns(nprocs: int):
    p = ProcessorArrangement("P", (nprocs,))
    n = 16 * nprocs
    b, c1 = DistFormat.block(), DistFormat.cyclic()
    c2, c3 = DistFormat.cyclic(2), DistFormat.cyclic(3)
    star = DistFormat.star()
    return [
        (mk((n,), (b,), p), mk((n,), (c1,), p)),
        (mk((n,), (b,), p), mk((n,), (c2,), p)),
        (mk((n,), (c1,), p), mk((n,), (c3,), p)),
        (mk((n, n), (b, star), p), mk((n, n), (star, b), p)),
    ]


@pytest.mark.parametrize("nprocs", [2, 4, 8, 16])
def test_round_robin_makespan_never_exceeds_naive(nprocs):
    for src, dst in _benchmark_patterns(nprocs):
        naive = plan_redistribution(src, dst, "naive")
        rr = plan_redistribution(src, dst, "round-robin")
        agg = plan_redistribution(src, dst, "aggregate")
        assert rr.makespan(COST, 8) <= naive.makespan(COST, 8)
        assert agg.message_count <= rr.message_count
        assert agg.moved_elements == rr.moved_elements == naive.moved_elements


# ---------------------------------------------------------------------------
# differential soundness: scheduled vs unscheduled execution
# ---------------------------------------------------------------------------

FIG1 = """
subroutine main()
  integer n
  real A(n, n), B(n, n)
!hpf$ align with B :: A
!hpf$ dynamic A, B
!hpf$ distribute B(block, *)
  compute reads A, B
!hpf$ realign A(i, j) with B(j, i)
!hpf$ redistribute B(cyclic, *)
  compute reads A, B
end
"""

FIG12 = """
subroutine remap(A, m)
  integer m, n, p
  real A(n,n), B(n,n), C(n,n)
  intent inout A
!hpf$ align with A :: B, C
!hpf$ dynamic A, B, C
!hpf$ distribute A(block, *)
  compute "init" writes B reads A
  if c1 then
!hpf$   redistribute A(cyclic, *)
    compute writes A, p reads A, B
  else
!hpf$   redistribute A(block, block)
    compute writes p reads A
  endif
  do i = 1, m
!hpf$   redistribute A(*, block)
    compute writes C reads A
!hpf$   redistribute A(block, *)
    compute writes A reads A, C
  enddo
end
"""

FIG16 = """
subroutine main(t)
  integer n, t
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute writes A
  do i = 1, t
!hpf$   redistribute A(cyclic)
    compute writes A reads A
!hpf$   redistribute A(block)
  enddo
  compute reads A
end
"""

N = 16

FIGURES = {
    "fig1": dict(
        source=FIG1,
        bindings={"n": N},
        conditions={},
        inputs={"a": np.arange(N * N, dtype=float).reshape(N, N), "b": np.ones((N, N))},
    ),
    "fig12-then": dict(
        source=FIG12,
        bindings={"n": N, "m": 3},
        conditions={"c1": True},
        inputs={"a": np.arange(N * N, dtype=float).reshape(N, N)},
    ),
    "fig12-else": dict(
        source=FIG12,
        bindings={"n": N, "m": 3},
        conditions={"c1": False},
        inputs={"a": np.arange(N * N, dtype=float).reshape(N, N)},
    ),
    "fig16": dict(
        source=FIG16,
        bindings={"n": N, "t": 5},
        conditions={},
        inputs={"a": np.arange(float(N))},
    ),
}


def _with_policy(compiled, policy):
    """The same artifact, executed under a scheduling policy.

    Only the execution mode changes: construction, generated code and
    therefore the remapping decisions are shared, which is exactly the
    'scheduled execution vs unscheduled executor' differential the
    soundness criterion compares.
    """
    options = dataclasses.replace(compiled.options, schedule=policy)
    return dataclasses.replace(compiled, options=options, plans=None)


def _run(compiled, w):
    machine = Machine(compiled.processors)
    env = ExecutionEnv(
        conditions=dict(w["conditions"]),
        bindings=dict(w["bindings"]),
        inputs={k: v.copy() for k, v in w["inputs"].items()},
    )
    name = next(iter(compiled.subroutines))
    result = Executor(compiled, machine, env).run(name)
    values = {a: result.value(a) for a in compiled.get(name).sub.arrays}
    return values, machine.stats


@pytest.mark.parametrize("name", sorted(FIGURES))
@pytest.mark.parametrize("level", [0, 3])
def test_figures_scheduled_equals_unscheduled(name, level):
    w = FIGURES[name]
    compiled = compile_program(
        w["source"],
        bindings=w["bindings"],
        processors=4,
        options=CompilerOptions(level=level),
    )
    ref_values, ref_stats = _run(compiled, w)
    for policy in SCHEDULED:
        values, stats = _run(_with_policy(compiled, policy), w)
        for a in ref_values:
            assert np.array_equal(values[a], ref_values[a]), (name, policy, a)
        assert stats.bytes == ref_stats.bytes, (name, policy)
        assert stats.local_bytes == ref_stats.local_bytes, (name, policy)
        if policy == "aggregate":
            # per-pair packing is exactly the ledger's message granularity
            assert stats.messages == ref_stats.messages, (name, policy)
        else:
            # unpacked policies message per contiguous rectangle
            assert stats.messages >= ref_stats.messages, (name, policy)
        assert stats.phases > 0 or stats.messages == 0


def test_workload_seeds_scheduled_equals_unscheduled():
    """Acceptance sweep: seeds 0..200, every policy, bit-identical values
    and identical total bytes to the unscheduled executor."""
    for seed in range(201):
        rng = np.random.default_rng(seed)
        program = random_legal_subroutine(rng, n_arrays=2, length=5, depth=1)
        conditions, inputs = random_environment(rng, n_arrays=2)
        w = dict(bindings={}, conditions=conditions, inputs=inputs)
        compiled = compile_program(
            program, processors=4, options=CompilerOptions(level=3)
        )
        ref_values, ref_stats = _run(compiled, w)
        for policy in SCHEDULED:
            values, stats = _run(_with_policy(compiled, policy), w)
            for a in ref_values:
                assert np.array_equal(values[a], ref_values[a]), (seed, policy, a)
            assert stats.bytes == ref_stats.bytes, (seed, policy)


# ---------------------------------------------------------------------------
# scheduled compilation: the traffic oracle and the cost guard
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy", SCHEDULED)
def test_scheduled_prediction_matches_observed(policy):
    w = FIGURES["fig12-then"]
    compiled = compile_program(
        w["source"],
        bindings=w["bindings"],
        processors=4,
        options=CompilerOptions(level=3, schedule=policy),
    )
    machine = Machine(compiled.processors)
    env = ExecutionEnv(
        conditions=dict(w["conditions"]),
        bindings=dict(w["bindings"]),
        inputs={k: v.copy() for k, v in w["inputs"].items()},
    )
    name = next(iter(compiled.subroutines))
    result = Executor(compiled, machine, env).run(name)
    observed = result.observed_traffic()
    predicted = predict_traffic(
        compiled,
        entry=name,
        conditions=w["conditions"],
        bindings=w["bindings"],
        inputs=frozenset(w["inputs"]),
    )
    assert predicted.bytes == observed.bytes
    assert predicted.messages == observed.messages
    assert predicted.phases == observed.phases
    assert predicted.makespan == pytest.approx(observed.makespan)
    assert result.phase_count == observed.phases
    # the breakdown accessors see the same totals
    by_tag = result.traffic_by_tag()
    assert sum(v["bytes"] for v in by_tag.values()) == observed.bytes
    assert sum(v["messages"] for v in by_tag.values()) == observed.messages


def test_scheduled_compile_is_sound_end_to_end():
    """Full pipelines (guarded motion prices the scheduled placement)
    still produce level-0-identical values and monotone bytes."""
    w = FIGURES["fig16"]
    naive = compile_program(
        w["source"], bindings=w["bindings"], processors=4,
        options=CompilerOptions(level=0),
    )
    ref_values, ref_stats = _run(naive, w)
    for policy in SCHEDULED:
        compiled = compile_program(
            w["source"], bindings=w["bindings"], processors=4,
            options=CompilerOptions(level=3, schedule=policy),
        )
        values, stats = _run(compiled, w)
        for a in ref_values:
            assert np.array_equal(values[a], ref_values[a]), (policy, a)
        assert stats.bytes <= ref_stats.bytes


# ---------------------------------------------------------------------------
# plan precompilation and session caching
# ---------------------------------------------------------------------------


def test_schedule_pass_precompiles_plans():
    w = FIGURES["fig12-then"]
    compiled = compile_program(
        w["source"],
        bindings=w["bindings"],
        processors=4,
        options=CompilerOptions(level=3, schedule="round-robin"),
    )
    assert "schedule" in compiled.options.pass_names
    assert compiled.plans is not None and len(compiled.plans) > 0
    assert compiled.trace.counter("schedule", "plans") == len(compiled.plans)
    # every executed remapping replays a precompiled plan: zero built
    _, stats = _run(compiled, w)
    assert stats.plans_built == 0
    assert stats.plans_reused == stats.remaps_performed > 0


def test_executor_builds_plans_when_pass_not_run():
    w = FIGURES["fig12-then"]
    compiled = compile_program(
        w["source"], bindings=w["bindings"], processors=4,
        options=CompilerOptions(level=3),
    )
    _, stats = _run(_with_policy(compiled, "round-robin"), w)
    assert stats.plans_built > 0


def test_warm_session_replays_plans_with_zero_scheduling_work():
    w = FIGURES["fig12-then"]
    session = CompilerSession(
        processors=4, options=CompilerOptions(level=3, schedule="aggregate")
    )
    kw = dict(
        bindings=w["bindings"], conditions=w["conditions"], inputs=w["inputs"]
    )
    r1 = session.run(w["source"], **kw)
    passes_after_cold = session.passes_run
    assert session.misses == 1
    r2 = session.run(w["source"], **kw)
    # warm: artifact (plans included) served from cache, no pass ran
    assert session.hits == 1
    assert session.passes_run == passes_after_cold
    assert r2.stats.plans_built == 0
    assert r2.stats.plans_reused == r2.stats.remaps_performed > 0
    assert r2.stats.bytes == r1.stats.bytes


def test_policies_never_share_cached_artifacts():
    w = FIGURES["fig1"]
    session = CompilerSession(processors=4)
    a = session.compile(
        w["source"], bindings=w["bindings"],
        options=CompilerOptions(level=3, schedule="round-robin"),
    )
    b = session.compile(
        w["source"], bindings=w["bindings"],
        options=CompilerOptions(level=3, schedule="aggregate"),
    )
    c = session.compile(
        w["source"], bindings=w["bindings"], options=CompilerOptions(level=3)
    )
    assert session.misses == 3 and session.hits == 0
    assert a.plans.policy == "round-robin"
    assert b.plans.policy == "aggregate"
    assert c.plans is None


def test_plan_table_is_signature_keyed(p4):
    table = CommPlanTable("round-robin")
    src = mk((16,), (DistFormat.block(),), p4)
    dst = mk((16,), (DistFormat.cyclic(),), p4, name="B")
    assert table.lookup(src, dst) is None
    plan = table.build(src, dst)
    assert table.lookup(src, dst) is plan
    # a different array with the same layouts shares the plan
    src2 = mk((16,), (DistFormat.block(),), p4, name="C")
    assert table.build(src2, dst) is plan
    assert len(table) == 1


# ---------------------------------------------------------------------------
# schedule-aware cost model
# ---------------------------------------------------------------------------


def test_estimate_lattice_carries_phases_and_makespan():
    a = TrafficEstimate(bytes=8, messages=1, phases=2, makespan=3.0)
    b = TrafficEstimate(bytes=16, messages=2, phases=1, makespan=1.0)
    assert (a + b).phases == 3
    assert (a + b).makespan == pytest.approx(4.0)
    assert a.scaled(3).makespan == pytest.approx(9.0)
    assert a.join(b).phases == 2 and a.join(b).makespan == pytest.approx(3.0)
    assert a.meet(b).phases == 1 and a.meet(b).makespan == pytest.approx(1.0)
    assert not a.dominated_by(b)  # larger makespan
    assert a.snapshot()["phases"] == 2


def test_scheduled_time_prices_makespan_not_endpoint_sums():
    cost = CostModel(alpha=1.0, beta=0.0, gamma=0.0, delta=0.0)
    est = TrafficEstimate(bytes=80, messages=10, phases=2, makespan=2.0)
    assert cost.time(est) == pytest.approx(10.0)
    assert cost.scheduled_time(est) == pytest.approx(2.0)
    # the scheduled comparison can accept what the serialized one rejects
    naive = TrafficEstimate(bytes=80, messages=4, phases=1, makespan=4.0)
    hoisted = TrafficEstimate(bytes=80, messages=6, phases=2, makespan=3.0)
    assert not cost.compare(naive, hoisted).hoist
    assert cost.compare(naive, hoisted, scheduled=True).hoist
