"""The perf-regression gate's decision logic (benchmarks/check_regression.py).

The gate must catch what can only be a code regression (makespan-ordering
violations, deterministic metrics drifting past the slowdown bound,
throughput collapse) while ignoring machine noise within the generous
tolerance; it compares only cases present in both files so smoke sweeps
gate against fuller baselines, and it must refuse to pass when nothing
was comparable (a silently disabled gate is the failure it exists to
prevent).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

spec = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(spec)
sys.modules["check_regression"] = check_regression
spec.loader.exec_module(check_regression)

check_schedule = check_regression.check_schedule
check_service = check_regression.check_service
check_symbolic = check_regression.check_symbolic
check_mp = check_regression.check_mp
check_obs_snapshot = check_regression.check_obs_snapshot
write_step_summary = check_regression.write_step_summary


def _symbolic(hit_rate=0.97, entries=1, speedup=36.0, inst_ms=1.0, pairs=32):
    return {
        "pairs": pairs,
        "cold": {"store_hit_rate": hit_rate, "store_entries": entries},
        "warm": {"speedup": speedup, "instantiate_ms_mean": inst_ms},
    }


def test_symbolic_clean_within_tolerance():
    problems, compared = check_symbolic(_symbolic(inst_ms=1.8), _symbolic(), 2.0)
    assert problems == [] and compared == 2


def test_symbolic_floors_fail():
    assert check_symbolic(_symbolic(hit_rate=0.5), _symbolic(), 2.0)[0]
    assert check_symbolic(_symbolic(entries=32), _symbolic(), 2.0)[0]
    assert check_symbolic(_symbolic(speedup=12.0), _symbolic(), 2.0)[0]


def test_symbolic_latency_drift_past_bound_fails():
    problems, _ = check_symbolic(_symbolic(inst_ms=3.0), _symbolic(inst_ms=1.0), 2.0)
    assert any("instantiation regressed" in p for p in problems)


def test_symbolic_different_sweeps_skip_latency_comparison():
    # a smoke sweep at another pair count is incomparable on latency, but
    # the absolute floors still gate (compared stays >= 1)
    problems, compared = check_symbolic(
        _symbolic(inst_ms=50.0, pairs=8), _symbolic(), 2.0
    )
    assert problems == [] and compared == 1


def _case(naive_ms=10.0, rr_ms=5.0, agg_msgs=4, rr_msgs=8, bytes_=640):
    return {
        "naive": {"makespan_us": naive_ms, "messages": rr_msgs, "bytes": bytes_},
        "round-robin": {"makespan_us": rr_ms, "messages": rr_msgs, "bytes": bytes_},
        "aggregate": {"makespan_us": rr_ms, "messages": agg_msgs, "bytes": bytes_},
    }


def test_schedule_clean_within_tolerance():
    fresh = {"results": {"a@P4": _case(rr_ms=6.0)}}
    base = {"results": {"a@P4": _case(rr_ms=4.0)}}  # 1.5x: inside 2x
    problems, compared = check_schedule(fresh, base, 2.0)
    assert problems == [] and compared == 1


def test_schedule_ordering_violation_fails():
    fresh = {"results": {"a@P4": _case(naive_ms=5.0, rr_ms=10.0)}}
    problems, _ = check_schedule(fresh, fresh, 2.0)
    assert any("makespan-ordering violation" in p for p in problems)


def test_schedule_aggregation_regression_fails():
    bad = _case()
    bad["aggregate"]["messages"] = 99
    problems, _ = check_schedule({"results": {"a@P4": bad}}, {"results": {"a@P4": bad}}, 2.0)
    assert any("aggregation increased messages" in p for p in problems)


def test_schedule_makespan_drift_past_bound_fails():
    fresh = {"results": {"a@P4": _case(rr_ms=9.0)}}
    base = {"results": {"a@P4": _case(rr_ms=4.0)}}  # 2.25x > 2x
    problems, _ = check_schedule(fresh, base, 2.0)
    assert any("makespan regressed" in p for p in problems)


def _fused(speedup=5.5, bytes_=12288, messages=1536, replays=14, trips=16):
    return {
        "pattern": "fused-loop@P4",
        "trips": trips,
        "best_of": 7,
        "unfused_us": 130000.0,
        "fused_us": 130000.0 / speedup,
        "speedup": speedup,
        "replays": replays,
        "bytes": bytes_,
        "messages": messages,
    }


def test_fused_replay_clean_and_floor():
    fresh = {"results": {"a@P4": _case()}, "fused_replay": _fused()}
    base = {"results": {"a@P4": _case()}, "fused_replay": _fused()}
    problems, compared = check_schedule(fresh, base, 2.0)
    assert problems == [] and compared == 1
    fresh["fused_replay"] = _fused(speedup=1.2)
    problems, _ = check_schedule(fresh, base, 2.0)
    assert any("fell below" in p for p in problems)


def test_fused_replay_traffic_drift_fails():
    base = {"results": {"a@P4": _case()}, "fused_replay": _fused()}
    for bad in (_fused(bytes_=1), _fused(messages=1), _fused(replays=2)):
        fresh = {"results": {"a@P4": _case()}, "fused_replay": bad}
        problems, _ = check_schedule(fresh, base, 2.0)
        assert any("drifted" in p for p in problems), bad


def test_fused_replay_different_workload_skips_comparison():
    # another trip count is incomparable on traffic; the floor still gates
    fresh = {"results": {"a@P4": _case()}, "fused_replay": _fused(trips=8, bytes_=1)}
    base = {"results": {"a@P4": _case()}, "fused_replay": _fused()}
    problems, _ = check_schedule(fresh, base, 2.0)
    assert problems == []


def test_schedule_compares_only_overlapping_cases():
    fresh = {"results": {"a@P4": _case()}}
    base = {"results": {"a@P4": _case(), "b@P16": _case(rr_ms=0.001)}}
    problems, compared = check_schedule(fresh, base, 2.0)
    assert problems == [] and compared == 1


def test_zero_overlap_is_reported_not_passed():
    """Disjoint case sets / schema drift must not look like a clean gate."""
    fresh = {"results": {"a@P4": _case()}}
    base = {"results": {"b@P16": _case()}}
    _, compared = check_schedule(fresh, base, 2.0)
    assert compared == 0
    _, compared = check_schedule({"wrong-key": {}}, base, 2.0)
    assert compared == 0
    _, compared = check_service({"results": {"1": {"warm_rps": 1.0}}}, {}, 2.0)
    assert compared == 0


def test_service_throughput_loss_fails_and_gain_passes():
    base = {"results": {"1": {"warm_rps": 100.0}, "4": {"warm_rps": 300.0}}}
    ok = {"results": {"1": {"warm_rps": 60.0}, "4": {"warm_rps": 900.0}}}
    problems, compared = check_service(ok, base, 2.0)
    assert problems == [] and compared == 2
    bad = {"results": {"4": {"warm_rps": 100.0}}}  # 3x loss on workers=4
    problems, _ = check_service(bad, base, 2.0)
    assert any("warm throughput lost" in p for p in problems)


def test_service_speedup_floor():
    base = {"results": {"1": {"warm_rps": 100.0}}}
    fresh = {"results": {"1": {"warm_rps": 100.0}}, "warm_speedup_4_vs_1": 1.4}
    problems, _ = check_service(fresh, base, 2.0)
    assert any("fell below the asserted 2x floor" in p for p in problems)


def test_main_exit_codes(tmp_path, capsys):
    """0 clean, 1 regression, 2 missing inputs / nothing comparable."""
    import json

    import pytest

    base_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
    # missing fresh files -> 2 (infrastructure, not a regression)
    with pytest.raises(SystemExit) as exc:
        check_regression.main(["--fresh-dir", str(tmp_path)])
    assert exc.value.code == 2
    capsys.readouterr()
    # fresh == committed baselines -> clean
    assert (
        check_regression.main(
            ["--fresh-dir", str(base_dir), "--baseline-dir", str(base_dir)]
        )
        == 0
    )
    capsys.readouterr()
    # a real throughput collapse -> 1
    svc = json.loads((base_dir / "BENCH_service.json").read_text())
    for r in svc["results"].values():
        r["warm_rps"] = float(r["warm_rps"]) / 10.0
    for name in ("BENCH_schedule.json", "BENCH_symbolic.json", "BENCH_mp.json"):
        (tmp_path / name).write_text((base_dir / name).read_text())
    (tmp_path / "BENCH_service.json").write_text(json.dumps(svc))
    assert (
        check_regression.main(
            ["--fresh-dir", str(tmp_path), "--baseline-dir", str(base_dir)]
        )
        == 1
    )
    capsys.readouterr()


def test_schema_drift_exits_2_not_1(tmp_path, capsys):
    """A renamed policy key is infrastructure failure (2), never read as
    a perf regression (1) via an uncaught KeyError."""
    import json

    base_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
    sched = json.loads((base_dir / "BENCH_schedule.json").read_text())
    for case in sched["results"].values():
        case["rr"] = case.pop("round-robin")
    (tmp_path / "BENCH_schedule.json").write_text(json.dumps(sched))
    (tmp_path / "BENCH_service.json").write_text(
        (base_dir / "BENCH_service.json").read_text()
    )
    rc = check_regression.main(
        ["--fresh-dir", str(tmp_path), "--baseline-dir", str(base_dir)]
    )
    assert rc == 2
    assert "schema" in capsys.readouterr().err


def _obs(schema=check_regression.OBS_SCHEMA, count=3):
    return {
        "schema": schema,
        "metrics": [
            {"name": "repro.x", "labels": {}, "kind": "counter", "value": 1.0},
            {
                "name": "repro.h",
                "labels": {},
                "kind": "histogram",
                "count": count,
                "sum": 0.5,
                "bounds": [1.0],
                "counts": [2, 1],
            },
        ],
    }


def test_obs_schema_constant_matches_library():
    """The gate's OBS_SCHEMA pin and the library's snapshot schema must
    move together -- this is the sync the gate docstring promises."""
    from repro.obs import SCHEMA_VERSION

    assert check_regression.OBS_SCHEMA == SCHEMA_VERSION


def test_obs_snapshot_clean_passes():
    assert check_obs_snapshot({"obs": _obs()}, "B.json") == []


def test_obs_snapshot_missing_or_wrong_schema_flagged():
    assert any("missing" in p for p in check_obs_snapshot({}, "B.json"))
    problems = check_obs_snapshot({"obs": _obs(schema=99)}, "B.json")
    assert any("schema" in p for p in problems)
    problems = check_obs_snapshot({"obs": {"schema": 1, "metrics": None}}, "B.json")
    assert any("no metrics list" in p for p in problems)


def test_obs_snapshot_torn_histogram_and_malformed_entry_flagged():
    problems = check_obs_snapshot({"obs": _obs(count=5)}, "B.json")
    assert any("torn histogram" in p for p in problems)
    mangled = _obs()
    mangled["metrics"].append({"value": 1.0})  # no name/kind
    problems = check_obs_snapshot({"obs": mangled}, "B.json")
    assert any("malformed" in p for p in problems)


def test_service_overhead_ceilings():
    base = {"results": {"1": {"warm_rps": 100.0}}}

    def fresh(metrics, tracing):
        return {
            "results": {"1": {"warm_rps": 100.0}},
            "overhead": {"metrics_overhead": metrics, "tracing_overhead": tracing},
        }

    ok, compared = check_service(fresh(0.004, 0.03), base, 2.0)
    assert ok == [] and compared == 2  # the overhead block counts as a case
    problems, _ = check_service(fresh(0.02, 0.03), base, 2.0)
    assert any("metric publication costs" in p for p in problems)
    problems, _ = check_service(fresh(0.004, 0.08), base, 2.0)
    assert any("tracing costs" in p for p in problems)
    # a negative measured overhead (faster than the disabled floor, i.e.
    # machine noise) is never a regression
    assert check_service(fresh(-0.02, -0.01), base, 2.0)[0] == []


def test_missing_overhead_block_is_infrastructure_failure(tmp_path, capsys):
    """A service payload without the overhead block means the benchmark
    and the gate no longer speak one schema: exit 2, never a silent pass."""
    import json

    base_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
    for name in ("BENCH_schedule.json", "BENCH_service.json", "BENCH_symbolic.json"):
        (tmp_path / name).write_text((base_dir / name).read_text())
    svc = json.loads((tmp_path / "BENCH_service.json").read_text())
    del svc["overhead"]
    (tmp_path / "BENCH_service.json").write_text(json.dumps(svc))
    rc = check_regression.main(
        ["--fresh-dir", str(tmp_path), "--baseline-dir", str(base_dir)]
    )
    assert rc == 2
    assert "overhead" in capsys.readouterr().err


def test_stripped_obs_snapshot_is_infrastructure_failure(tmp_path, capsys):
    import json

    base_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
    for name in ("BENCH_schedule.json", "BENCH_service.json", "BENCH_symbolic.json"):
        (tmp_path / name).write_text((base_dir / name).read_text())
    sched = json.loads((tmp_path / "BENCH_schedule.json").read_text())
    del sched["obs"]
    (tmp_path / "BENCH_schedule.json").write_text(json.dumps(sched))
    rc = check_regression.main(
        ["--fresh-dir", str(tmp_path), "--baseline-dir", str(base_dir)]
    )
    assert rc == 2
    assert "refusing to gate" in capsys.readouterr().err


def test_gate_passes_on_committed_baselines_shape():
    """The committed baselines themselves are ordering-clean."""
    import json

    base_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
    sched = json.loads((base_dir / "BENCH_schedule.json").read_text())
    svc = json.loads((base_dir / "BENCH_service.json").read_text())
    sym = json.loads((base_dir / "BENCH_symbolic.json").read_text())
    mp = json.loads((base_dir / "BENCH_mp.json").read_text())
    assert check_schedule(sched, sched, 2.0)[0] == []
    assert check_service(svc, svc, 2.0)[0] == []
    assert check_symbolic(sym, sym, 2.0)[0] == []
    assert check_mp(mp, mp, 2.0)[0] == []


# ---------------------------------------------------------------------------
# the mp-transport gate
# ---------------------------------------------------------------------------


def _mp(
    rr_port=2500.0,
    naive_port=5200.0,
    agg_msgs=12,
    rr_msgs=48,
    bytes_=4096,
    calibration=2.0,
    nprocs=8,
):
    def policy(port, msgs):
        return {
            "port_us": port,
            "wall_us": port * 3,
            "predicted_us": port / calibration,
            "calibration": calibration,
            "messages": msgs,
            "bytes": bytes_,
            "phases": 7,
        }

    return {
        "experiment": "mp-transport",
        "nprocs": nprocs,
        "n": 4096,
        "trips": 4,
        "results": {
            "naive": policy(naive_port, rr_msgs),
            "round-robin": policy(rr_port, rr_msgs),
            "aggregate": policy(rr_port, agg_msgs),
        },
    }


def test_mp_clean_within_tolerance():
    problems, compared = check_mp(_mp(), _mp(), 2.0)
    assert problems == [] and compared == 4


def test_mp_measured_ordering_violation_fails():
    fresh = _mp(rr_port=9000.0, naive_port=5000.0)
    problems, _ = check_mp(fresh, fresh, 2.0)
    assert any("makespan-ordering violation" in p for p in problems)


def test_mp_aggregation_regression_fails():
    fresh = _mp(agg_msgs=99)
    problems, _ = check_mp(fresh, fresh, 2.0)
    assert any("aggregation increased real messages" in p for p in problems)


def test_mp_deterministic_traffic_drift_fails():
    problems, _ = check_mp(_mp(rr_msgs=50), _mp(rr_msgs=48), 2.0)
    assert any("deterministic messages drifted" in p for p in problems)
    problems, _ = check_mp(_mp(bytes_=1), _mp(), 2.0)
    assert any("deterministic bytes drifted" in p for p in problems)


def test_mp_calibration_band_is_wide_but_bounded():
    # 10x worse calibration: a slow runner, inside the 10*max_slowdown band
    problems, _ = check_mp(_mp(calibration=20.0), _mp(calibration=2.0), 2.0)
    assert problems == []
    # 25x: an accidental sync/sleep in the transport, outside the band
    problems, _ = check_mp(_mp(calibration=50.0), _mp(calibration=2.0), 2.0)
    assert any("calibration ratio regressed" in p for p in problems)


def test_mp_different_experiment_shape_skips_baseline_comparison():
    # a smoke sweep at another machine size is incomparable against the
    # baseline, but the fresh ordering invariants still gate
    problems, compared = check_mp(
        _mp(nprocs=4, rr_msgs=5000, calibration=99.0), _mp(), 2.0
    )
    assert problems == [] and compared == 1


def test_mp_nonpositive_calibration_flagged():
    fresh = _mp()
    fresh["results"]["naive"]["calibration"] = 0.0
    problems, _ = check_mp(fresh, fresh, 2.0)
    assert any("not positive" in p for p in problems)


# ---------------------------------------------------------------------------
# the GITHUB_STEP_SUMMARY writer
# ---------------------------------------------------------------------------


def test_step_summary_unset_is_silent_noop(tmp_path, monkeypatch):
    monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
    assert write_step_summary(["## Perf gate"]) is False


def test_step_summary_appends_markdown(tmp_path, monkeypatch):
    target = tmp_path / "summary.md"
    target.write_text("# Earlier step\n")
    monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(target))
    assert write_step_summary(["## Perf gate", "", "**OK**"]) is True
    text = target.read_text()
    assert text.startswith("# Earlier step\n")  # appended, not clobbered
    assert "## Perf gate" in text and "**OK**" in text


def test_main_writes_step_summary_on_every_verdict(tmp_path, monkeypatch, capsys):
    import json

    base_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
    names = (
        "BENCH_schedule.json",
        "BENCH_service.json",
        "BENCH_symbolic.json",
        "BENCH_mp.json",
    )

    # clean run -> OK verdict with the per-benchmark comparison table
    summary = tmp_path / "ok.md"
    monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
    assert check_regression.main(
        ["--fresh-dir", str(base_dir), "--baseline-dir", str(base_dir)]
    ) == 0
    text = summary.read_text()
    assert "## Perf gate" in text and "OK" in text
    assert "BENCH_mp.json" in text
    capsys.readouterr()

    # regression run -> the violation lands in the summary markdown
    fresh = tmp_path / "fresh"
    fresh.mkdir()
    for name in names:
        (fresh / name).write_text((base_dir / name).read_text())
    mp = json.loads((fresh / "BENCH_mp.json").read_text())
    mp["results"]["round-robin"]["port_us"] = (
        mp["results"]["naive"]["port_us"] * 10.0
    )
    (fresh / "BENCH_mp.json").write_text(json.dumps(mp))
    summary = tmp_path / "bad.md"
    monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
    assert check_regression.main(
        ["--fresh-dir", str(fresh), "--baseline-dir", str(base_dir)]
    ) == 1
    assert "makespan-ordering violation" in summary.read_text()
    capsys.readouterr()

    # infrastructure failure -> exit 2, also surfaced in the summary
    summary = tmp_path / "infra.md"
    monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
    with __import__("pytest").raises(SystemExit) as exc:
        check_regression.main(
            ["--fresh-dir", str(tmp_path), "--baseline-dir", str(base_dir)]
        )
    assert exc.value.code == 2
    assert "infrastructure failure" in summary.read_text()
    capsys.readouterr()


def test_missing_mp_json_is_infrastructure_failure(tmp_path, capsys):
    """The bench-smoke leg must actually run bench_mp: a missing fresh
    BENCH_mp.json exits 2, never a silent pass."""
    import pytest

    base_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
    for name in ("BENCH_schedule.json", "BENCH_service.json", "BENCH_symbolic.json"):
        (tmp_path / name).write_text((base_dir / name).read_text())
    with pytest.raises(SystemExit) as exc:
        check_regression.main(
            ["--fresh-dir", str(tmp_path), "--baseline-dir", str(base_dir)]
        )
    assert exc.value.code == 2
    capsys.readouterr()
