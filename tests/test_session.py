"""CompilerSession: artifact caching, key sensitivity, session-driven runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CompilerOptions,
    CompilerSession,
    ExecutionEnv,
    Executor,
    Machine,
    compile_program,
)
from repro.apps.adi import adi_kernels, build_adi_program

SRC = """
subroutine main()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute reads A
!hpf$ redistribute A(cyclic)
  compute writes A reads A
!hpf$ redistribute A(block)
  compute reads A
end
"""

SRC2 = """
subroutine other()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(cyclic)
  compute reads A
!hpf$ redistribute A(block)
  compute reads A
end
"""


def test_warm_compile_hits_cache_with_zero_pass_work():
    s = CompilerSession(processors=4)
    cold = s.compile(SRC, bindings={"n": 32})
    assert s.stats["misses"] == 1 and s.stats["hits"] == 0
    passes_after_cold = s.stats["passes_run"]
    assert passes_after_cold == len(cold.trace.records) > 0

    warm = s.compile(SRC, bindings={"n": 32})
    assert warm is cold  # the artifact itself, not a recompile
    assert s.stats["hits"] == 1
    # zero parse/construction work on the warm path: no new pass records
    assert s.stats["passes_run"] == passes_after_cold
    assert s.stats["hit_rate"] == 0.5


def test_runtime_only_bindings_do_not_recompile():
    # `t` is a declared scalar (a runtime loop bound): after the cold
    # compile teaches the session that only extents matter, varying `t`
    # re-serves the same artifact
    s = CompilerSession(processors=4)
    prog = build_adi_program(16)
    cold = s.compile(prog, bindings={"t": 2})
    warm = s.compile(prog, bindings={"t": 5})
    assert s.stats["hits"] == 1 and s.stats["misses"] == 1
    # the expensive products are shared; only the binding wrapper differs,
    # carrying the *current* caller's bindings for the executor fallback
    assert warm.get("adi").code is cold.get("adi").code
    assert warm.get("adi").construction is cold.get("adi").construction
    assert warm.get("adi").sub.bindings["t"] == 5
    assert cold.get("adi").sub.bindings["t"] == 2
    assert s.compile(prog, bindings={"t": 2}) is cold  # exact match: verbatim
    assert s.stats["hits"] == 2 and s.stats["misses"] == 1
    # and the runs still honour the varying bound (2 vs 5 sweeps)
    u0 = np.ones((16, 16))
    r2 = s.run(prog, bindings={"t": 2}, kernels=adi_kernels(0.1), inputs={"u": u0})
    r5 = s.run(prog, bindings={"t": 5}, kernels=adi_kernels(0.1), inputs={"u": u0})
    assert not np.allclose(r2.value("u"), r5.value("u"))
    assert s.stats["misses"] == 1  # still the one cold compile


def test_cache_key_sensitivity():
    s = CompilerSession(processors=4)
    base = s.compile(SRC, bindings={"n": 32})
    assert s.compile(SRC, bindings={"n": 64}) is not base  # bindings differ
    assert s.compile(SRC2, bindings={"n": 32}) is not base  # source differs
    assert s.compile(SRC, bindings={"n": 32}, processors=2) is not base
    assert (
        s.compile(SRC, bindings={"n": 32}, options=CompilerOptions(level=1))
        is not base
    )
    # level=3 and its desugared pass list are the *same* key
    assert (
        s.compile(
            SRC,
            bindings={"n": 32},
            options=CompilerOptions(passes=CompilerOptions(level=3).pass_names),
        )
        is base
    )
    assert s.stats["misses"] == 5 and s.stats["hits"] == 1


def test_lru_eviction_bound():
    s = CompilerSession(processors=4, max_entries=2)
    s.compile(SRC, bindings={"n": 8})
    s.compile(SRC, bindings={"n": 16})
    s.compile(SRC, bindings={"n": 8})  # refresh: 8 is now most recent
    s.compile(SRC, bindings={"n": 32})  # evicts 16
    assert s.stats["evictions"] == 1
    assert s.cache_size == 2
    s.compile(SRC, bindings={"n": 8})  # still cached
    assert s.stats["hits"] == 2
    s.compile(SRC, bindings={"n": 16})  # was evicted: recompiles
    assert s.stats["misses"] == 4


def test_ast_sources_are_cacheable():
    s = CompilerSession(processors=4)
    prog = build_adi_program(16)
    a = s.compile(prog)
    b = s.compile(prog)
    assert a is b and s.stats["hits"] == 1
    # a structurally identical rebuild hits too (content digest, not id)
    c = s.compile(build_adi_program(16))
    assert c is a
    assert s.compile(build_adi_program(32)) is not a


def test_session_run_matches_manual_executor():
    n = 16
    u0 = np.arange(n * n, dtype=float).reshape(n, n)
    s = CompilerSession(processors=4)
    res = s.run(
        build_adi_program(n),
        bindings={"t": 2},
        kernels=adi_kernels(0.1),
        inputs={"u": u0},
    )

    compiled = compile_program(build_adi_program(n), processors=4)
    machine = Machine(compiled.processors)
    env = ExecutionEnv(bindings={"t": 2}, kernels=adi_kernels(0.1), inputs={"u": u0})
    manual = Executor(compiled, machine, env).run("adi")

    assert np.allclose(res.value("u"), manual.value("u"))
    assert res.machine.stats.snapshot() == machine.stats.snapshot()


def test_session_run_reuses_artifact_across_runs():
    s = CompilerSession(processors=4)
    n = 8
    for _ in range(3):
        r = s.run(
            SRC.replace("main", "m1"),
            bindings={"n": n},
            inputs={"a": np.ones(n)},
        )
        assert r.stats.snapshot()["remaps_performed"] >= 1
    assert s.stats["misses"] == 1 and s.stats["hits"] == 2


def test_session_defaults_and_overrides():
    s = CompilerSession(processors=4, options=CompilerOptions(level=0))
    cp = s.compile(SRC, bindings={"n": 8})
    assert cp.options.naive
    cp3 = s.compile(SRC, bindings={"n": 8}, options=CompilerOptions(level=3))
    assert not cp3.options.naive and cp3 is not cp


def test_bad_session_arguments():
    with pytest.raises(ValueError):
        CompilerSession(max_entries=0)
    s = CompilerSession(processors=4)
    with pytest.raises(TypeError):
        s.compile(12345)  # type: ignore[arg-type]


def test_cost_model_is_part_of_the_cache_key():
    """Two sessions (or two options) with different machine cost models
    must not share artifacts: the motion pass's cost guard makes different
    code-motion decisions under different latency/bandwidth/status-check
    parameters, so an artifact compiled for one machine model may be wrong
    traffic-wise for another."""
    from repro import CostModel

    # constant zero-trip Fig. 16 shape: the sink decision flips with the
    # status-check cost (see test_cost_guard), so the artifacts really differ
    src = """
subroutine main()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute writes A
  do i = 1, 0
!hpf$   redistribute A(cyclic)
    compute reads A
!hpf$   redistribute A(block)
  enddo
  compute reads A
end
"""
    s = CompilerSession(processors=4)
    default_model = s.compile(src, bindings={"n": 16})
    free_checks = s.compile(
        src,
        bindings={"n": 16},
        options=CompilerOptions(level=3, cost=CostModel(delta=0.0)),
    )
    assert s.stats["misses"] == 2 and s.stats["hits"] == 0
    assert free_checks is not default_model
    # the cached artifacts embody different motion decisions
    assert default_model.report.motion["main"].count == 0
    assert free_checks.report.motion["main"].count == 1

    # same cost model again: a hit, served from cache
    again = s.compile(src, bindings={"n": 16})
    assert again is default_model and s.stats["hits"] == 1

    # session-level default cost models separate sessions' keys too
    s2 = CompilerSession(
        processors=4, options=CompilerOptions(level=3, cost=CostModel(delta=0.0))
    )
    via_session_default = s2.compile(src, bindings={"n": 16})
    assert via_session_default.report.motion["main"].count == 1
