"""Unit tests for the runtime descriptors and the memory manager."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeadCopyError, OutOfMemoryError, RuntimeRemapError
from repro.mapping import DistFormat, Mapping, ProcessorArrangement
from repro.runtime.memory import MemoryManager, blocks_needed
from repro.runtime.status import ArrayRuntime
from repro.spmd import DistributedArray, Machine

P4 = ProcessorArrangement("P", (4,))


def mk_mapping(fmt=None):
    return Mapping.simple((16,), (fmt or DistFormat.block(),), P4)


def mk_state(machine=None, nversions=2):
    machine = machine or Machine(P4)
    versions = [mk_mapping(DistFormat.block()), mk_mapping(DistFormat.cyclic())][
        :nversions
    ]
    state = ArrayRuntime("a", versions)
    return state, machine


# ---------------------------------------------------------------------------
# ArrayRuntime
# ---------------------------------------------------------------------------


def test_initial_descriptor_all_dead():
    state, _ = mk_state()
    assert state.status == 0
    assert state.live == [False, False]
    assert state.insts == [None, None]
    assert state.live_versions() == []


def test_require_current_values_dead_raises():
    state, _ = mk_state()
    with pytest.raises(DeadCopyError):
        state.require_current_values()


def test_require_current_values_poisoned_raises():
    state, machine = mk_state()
    state.insts[0] = DistributedArray("a_0", state.versions[0], machine)
    state.live[0] = True
    state.poisoned = True
    with pytest.raises(DeadCopyError):
        state.require_current_values()


def test_mark_stale_siblings():
    state, machine = mk_state()
    state.live = [True, True]
    state.mark_stale_siblings(1)
    assert state.live == [False, True]


def test_free_version_respects_caller_ownership():
    state, machine = mk_state()
    inst = DistributedArray("a_0", state.versions[0], machine)
    state.insts[0] = inst
    state.live[0] = True
    state.caller_owned.add(0)
    freed = state.free_version(0)
    assert freed == 0  # not actually freed
    assert state.insts[0] is inst  # storage intact
    assert not state.live[0]  # but marked dead


def test_free_version_releases_memory():
    state, machine = mk_state()
    inst = DistributedArray("a_0", state.versions[0], machine)
    state.insts[0] = inst
    state.live[0] = True
    before = machine.mem_used(0)
    freed = state.free_version(0)
    assert freed > 0
    assert machine.mem_used(0) < before
    assert state.insts[0] is None


def test_live_copies_consistency_check():
    state, machine = mk_state()
    for v in (0, 1):
        state.insts[v] = DistributedArray(f"a_{v}", state.versions[v], machine)
        state.insts[v].scatter_from_global(np.arange(16.0))
        state.live[v] = True
    assert state.check_live_copies_consistent()
    state.insts[1].set((3,), 99.0)
    assert not state.check_live_copies_consistent()


# ---------------------------------------------------------------------------
# MemoryManager
# ---------------------------------------------------------------------------


def test_blocks_needed_per_rank():
    needed = blocks_needed(mk_mapping(), Machine(P4), 8)
    assert needed == {0: 32, 1: 32, 2: 32, 3: 32}


def test_allocate_without_limit():
    machine = Machine(P4)
    mm = MemoryManager(machine)
    inst = mm.allocate("a_0", mk_mapping())
    assert inst.total_local_bytes() == 16 * 8


def test_allocate_evicts_largest_candidate():
    machine = Machine(P4, memory_limit=80)
    state, _ = mk_state(machine)
    mm = MemoryManager(machine, lambda: [(state, v) for v in (0, 1)])
    # fill both versions: 32 + 32 = 64 <= 80
    state.insts[0] = mm.allocate("a_0", state.versions[0])
    state.live[0] = True
    state.insts[1] = mm.allocate("a_1", state.versions[1])
    state.live[1] = True
    state.status = 1
    # a third allocation (32) exceeds the limit: version 0 must be evicted
    third = mm.allocate("a_2", mk_mapping(DistFormat.cyclic(2)))
    assert machine.stats.evictions == 1
    assert state.insts[0] is None and not state.live[0]
    assert third.total_local_bytes() == 128


def test_allocate_never_evicts_current_or_caller_owned():
    machine = Machine(P4, memory_limit=40)
    state, _ = mk_state(machine)
    mm = MemoryManager(machine, lambda: [(state, v) for v in (0, 1)])
    state.insts[0] = mm.allocate("a_0", state.versions[0])
    state.live[0] = True
    state.status = 0  # current: not evictable
    with pytest.raises(OutOfMemoryError):
        mm.allocate("a_1", state.versions[1])


def test_condition_sequences_and_callables():
    from repro.runtime.executor import ExecutionEnv

    env = ExecutionEnv(conditions={"a": [True, False], "b": True, "c": lambda: False})
    assert env.condition("a") is True
    assert env.condition("a") is False
    with pytest.raises(RuntimeRemapError):
        env.condition("a")  # exhausted
    assert env.condition("b") is True
    assert env.condition("c") is False
    with pytest.raises(RuntimeRemapError):
        env.condition("missing")


def test_executor_machine_size_mismatch():
    from repro import ExecutionEnv, Executor, compile_program

    compiled = compile_program(
        "subroutine s()\n  real A(8)\n  compute reads A\nend\n",
        processors=4,
    )
    with pytest.raises(RuntimeRemapError):
        Executor(compiled, Machine(3), ExecutionEnv())
