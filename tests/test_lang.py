"""Tests for the mini-HPF front end: tokenizer, parser, printer, builder, semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MissingInterfaceError, ParseError, SemanticError
from repro.lang import (
    parse_program,
    parse_subroutine,
    print_program,
    resolve_program,
)
from repro.lang.ast_nodes import (
    AlignSubscript,
    Block,
    Call,
    Compute,
    Do,
    If,
    Kill,
    Program,
    Realign,
    Redistribute,
)
from repro.lang.builder import SubroutineBuilder, program
from repro.lang.tokens import HPF, NAME, NEWLINE, tokenize
from repro.mapping import DistKind, ProcessorArrangement


# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------


def test_tokenize_basic_line():
    toks = tokenize("real A(10, n)")
    kinds = [t.kind for t in toks]
    assert kinds[:3] == [NAME, NAME, "PUNCT"]
    assert toks[0].value == "real"
    assert toks[-1].kind == "EOF"


def test_tokenize_hpf_marker():
    toks = tokenize("!hpf$ distribute A(block)")
    assert toks[0].kind == HPF
    assert toks[1].value == "distribute"


def test_tokenize_comment_skipped():
    toks = tokenize("call foo(A) ! remaps A\ncall bar(B)")
    values = [t.value for t in toks if t.kind == NAME]
    assert values == ["call", "foo", "a", "call", "bar", "b"]


def test_tokenize_case_insensitive():
    toks = tokenize("REAL A(10)")
    assert toks[0].value == "real"
    assert toks[1].value == "a"


def test_tokenize_string():
    toks = tokenize('compute "sweep x" reads A')
    assert toks[1].kind == "STRING"
    assert toks[1].value == "sweep x"


def test_tokenize_unterminated_string():
    with pytest.raises(ParseError):
        tokenize('compute "oops')


def test_tokenize_bad_char():
    with pytest.raises(ParseError):
        tokenize("call foo(A) @")


def test_tokenize_newlines_collapsed_to_one_per_line():
    toks = tokenize("a\n\n\nb")
    assert [t.kind for t in toks] == [NAME, NEWLINE, NAME, NEWLINE, "EOF"]


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

FIG10 = """
subroutine remap(A, m)
  integer m, n, p
  real A(n,n), B(n,n), C(n,n)
  intent inout A
!hpf$ align with A :: B, C
!hpf$ dynamic A, B, C
!hpf$ distribute A(block, *)
  compute "init" writes B reads A
  if c1 then
!hpf$   redistribute A(cyclic, *)
    compute writes A, p reads A, B
  else
!hpf$   redistribute A(block, block)
    compute writes p reads A
  endif
  do i = 1, m
!hpf$   redistribute A(*, block)
    compute writes C reads A
!hpf$   redistribute A(block, *)
    compute writes A reads A, C
  enddo
end
"""


def test_parse_fig10_structure():
    sub = parse_subroutine(FIG10)
    assert sub.name == "remap"
    assert sub.params == ("a", "m")
    body = sub.body.stmts
    assert isinstance(body[0], Compute)
    assert body[0].label == "init"
    assert isinstance(body[1], If)
    assert isinstance(body[1].then.stmts[0], Redistribute)
    assert body[1].then.stmts[0].formats[0].kind == "cyclic"
    assert isinstance(body[2], Do)
    assert len(body[2].body.stmts) == 4


def test_parse_align_shorthand_expands():
    sub = parse_subroutine(FIG10)
    aligns = [d for d in sub.decls if type(d).__name__ == "AlignDecl"]
    assert [a.alignee for a in aligns] == ["b", "c"]
    assert all(a.target == "a" for a in aligns)


def test_parse_align_with_dummies():
    sub = parse_subroutine(
        """
subroutine s()
  real A(8,8), B(8,8)
!hpf$ align A(i, j) with B(j, i)
end
"""
    )
    (al,) = [d for d in sub.decls if type(d).__name__ == "AlignDecl"]
    assert al.dummies == ("i", "j")
    assert al.subscripts == (
        AlignSubscript.of_dummy("j"),
        AlignSubscript.of_dummy("i"),
    )


def test_parse_affine_subscripts():
    sub = parse_subroutine(
        """
subroutine s()
  real A(8)
!hpf$ template T(20, 4)
!hpf$ align A(i) with T(2*i+1, *)
end
"""
    )
    (al,) = [d for d in sub.decls if type(d).__name__ == "AlignDecl"]
    s0, s1 = al.subscripts
    assert (s0.stride, s0.offset, s0.dummy) == (2, 1, "i")
    assert s1.kind == "star"


def test_parse_negative_offset_and_const():
    sub = parse_subroutine(
        """
subroutine s()
  real A(8)
!hpf$ template T(20, 4)
!hpf$ align A(i) with T(i-1, 3)
end
"""
    )
    (al,) = [d for d in sub.decls if type(d).__name__ == "AlignDecl"]
    assert al.subscripts[0].offset == -1
    assert al.subscripts[1].kind == "const" and al.subscripts[1].offset == 3


def test_parse_distribute_onto_and_sizes():
    sub = parse_subroutine(
        """
subroutine s()
  real A(16, 16)
!hpf$ processors P(2, 2)
!hpf$ distribute A(block(4), cyclic(2)) onto P
end
"""
    )
    (di,) = [d for d in sub.decls if type(d).__name__ == "DistributeDecl"]
    assert di.onto == "p"
    assert di.formats[0].kind == "block" and di.formats[0].arg == 4
    assert di.formats[1].kind == "cyclic" and di.formats[1].arg == 2


def test_parse_call_and_kill():
    sub = parse_subroutine(
        """
subroutine s()
  real A(8)
  call foo(A)
!hpf$ kill A
end
"""
    )
    assert sub.body.stmts[0] == Call("foo", ("a",))
    assert sub.body.stmts[1] == Kill(("a",))


def test_parse_realign_statement():
    sub = parse_subroutine(
        """
subroutine s()
  real A(8,8), B(8,8)
!hpf$ align A with B
!hpf$ realign A(i,j) with B(j,i)
end
"""
    )
    (st,) = sub.body.stmts
    assert isinstance(st, Realign)
    assert st.dummies == ("i", "j")


def test_parse_errors_have_positions():
    with pytest.raises(ParseError) as e:
        parse_subroutine("subroutine s(\nend")
    assert "line" in str(e.value)


def test_parse_if_without_else():
    sub = parse_subroutine(
        """
subroutine s()
  real A(8)
  if c then
    compute reads A
  endif
end
"""
    )
    (st,) = sub.body.stmts
    assert isinstance(st, If)
    assert st.orelse == Block()


def test_parse_program_multiple_subroutines():
    p = parse_program(
        """
subroutine foo(X)
  real X(8)
end

subroutine main()
  real A(8)
  call foo(A)
end
"""
    )
    assert [s.name for s in p.subroutines] == ["foo", "main"]


def test_parse_empty_program_rejected():
    with pytest.raises(ParseError):
        parse_program("   \n  \n")


# ---------------------------------------------------------------------------
# printer round-trip
# ---------------------------------------------------------------------------


def test_print_parse_roundtrip_fig10():
    p1 = Program((parse_subroutine(FIG10),))
    text = print_program(p1)
    p2 = parse_program(text)
    assert p1 == p2


def test_print_parse_roundtrip_features():
    src = """
subroutine s(m, X)
  integer m
  real X(8, 8), Y(8)
  intent inout X
!hpf$ processors P(2, 2)
!hpf$ template T(16, 16)
!hpf$ align X(i, j) with T(2*j, i+3)
!hpf$ align Y(k) with T(k, *)
!hpf$ dynamic X, Y
!hpf$ distribute T(block(8), cyclic) onto P
  compute "k1" reads X writes Y defines X
  if c1 then
!hpf$   realign X(i, j) with T(j, i)
  else
    do i = 1, m
      call s(m, X)
    enddo
  endif
!hpf$ kill Y
end
"""
    p1 = parse_program(src)
    assert parse_program(print_program(p1)) == p1


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------


def test_builder_matches_parsed():
    b = SubroutineBuilder("s", params=("m",))
    b.scalar("m")
    b.array("a", (8, 8))
    b.dynamic("a")
    b.distribute("a", "block", "*")
    b.compute(reads=("a",))
    with b.do("i", 1, "m"):
        b.redistribute("a", "*", "block")
        b.compute(writes=("a",))
    sub = b.build()
    parsed = parse_subroutine(
        """
subroutine s(m)
  integer m
  real a(8, 8)
!hpf$ dynamic a
!hpf$ distribute a(block, *)
  compute reads a
  do i = 1, m
!hpf$   redistribute a(*, block)
    compute writes a
  enddo
end
"""
    )
    assert sub == parsed


def test_builder_branch():
    b = SubroutineBuilder("s")
    b.array("a", (8,))
    with b.branch("c1") as alt:
        b.compute(reads=("a",))
        alt.orelse()
        b.compute(writes=("a",))
    sub = b.build()
    (st,) = sub.body.stmts
    assert isinstance(st, If)
    assert isinstance(st.then.stmts[0], Compute)
    assert st.orelse.stmts[0].writes == ("a",)


def test_builder_bad_format():
    b = SubroutineBuilder("s")
    with pytest.raises(ValueError):
        b.distribute("a", "diagonal")


# ---------------------------------------------------------------------------
# semantics
# ---------------------------------------------------------------------------


def test_resolve_fig10_initial_mappings():
    p = Program((parse_subroutine(FIG10),))
    r = resolve_program(p, bindings={"n": 16}, default_processors=ProcessorArrangement("P", (4,)))
    sub = r.get("remap")
    a = sub.array("a")
    assert a.shape == (16, 16)
    assert a.intent == "inout"
    assert a.dynamic
    # all three aligned to the same template, block by rows
    b = sub.array("b")
    assert a.initial_mapping.same_layout(b.initial_mapping)
    dm = a.initial_mapping.dim_maps
    assert dm[0].kind is DistKind.BLOCK and dm[0].is_distributed
    assert not dm[1].is_distributed


def test_resolve_symbolic_extent_missing_binding():
    p = Program((parse_subroutine(FIG10),))
    with pytest.raises(SemanticError):
        resolve_program(p, default_processors=ProcessorArrangement("P", (4,)))


def test_resolve_unmapped_array_is_replicated():
    p = parse_program(
        """
subroutine s()
  real A(8)
!hpf$ processors P(4)
  compute reads A
end
"""
    )
    r = resolve_program(p)
    m = r.get("s").array("a").initial_mapping
    from repro.mapping.ownership import layout_of

    lay = layout_of(m)
    assert len(lay.holders()) == 4
    assert lay.dim_is_local(0)


def test_resolve_align_chain_composition():
    p = parse_program(
        """
subroutine s()
  real A(8, 8), B(8, 8), C(8, 8)
!hpf$ processors P(2)
!hpf$ align B with A
!hpf$ align C(i, j) with B(j, i)
!hpf$ distribute A(block, *)
end
"""
    )
    r = resolve_program(p)
    sub = r.get("s")
    a, b, c = (sub.array(n).initial_mapping for n in "abc")
    assert a.same_layout(b)
    assert not a.same_layout(c)  # transposed


def test_resolve_missing_interface():
    p = parse_program(
        """
subroutine main()
  real A(8)
!hpf$ processors P(2)
  call mystery(A)
end
"""
    )
    with pytest.raises(MissingInterfaceError):
        resolve_program(p)


def test_resolve_arg_shape_mismatch():
    p = parse_program(
        """
subroutine foo(X)
  real X(16)
!hpf$ processors P(2)
end

subroutine main()
  real A(8)
  call foo(A)
end
"""
    )
    with pytest.raises(SemanticError):
        resolve_program(p)


def test_resolve_intent_on_non_dummy_rejected():
    p = parse_program(
        """
subroutine s()
  real A(8)
  intent in A
!hpf$ processors P(2)
end
"""
    )
    with pytest.raises(SemanticError):
        resolve_program(p)


def test_resolve_align_cycle_rejected():
    p = parse_program(
        """
subroutine s()
  real A(8), B(8)
!hpf$ processors P(2)
!hpf$ align A with B
!hpf$ align B with A
end
"""
    )
    with pytest.raises(SemanticError):
        resolve_program(p)


def test_resolve_aligned_and_distributed_rejected():
    p = parse_program(
        """
subroutine s()
  real A(8), B(8)
!hpf$ processors P(2)
!hpf$ align A with B
!hpf$ distribute A(block)
!hpf$ distribute B(block)
end
"""
    )
    with pytest.raises(SemanticError):
        resolve_program(p)


def test_resolve_compute_unknown_name():
    p = parse_program(
        """
subroutine s()
  real A(8)
!hpf$ processors P(2)
  compute reads Z
end
"""
    )
    with pytest.raises(SemanticError):
        resolve_program(p)


def test_resolve_default_intent_is_inout():
    p = parse_program(
        """
subroutine foo(X)
  real X(8)
!hpf$ processors P(2)
end
"""
    )
    assert resolve_program(p).get("foo").array("x").intent == "inout"


def test_resolve_mismatched_processors_across_subs():
    p = parse_program(
        """
subroutine a()
  real X(8)
!hpf$ processors P(2)
end

subroutine b()
  real X(8)
!hpf$ processors Q(4)
end
"""
    )
    with pytest.raises(SemanticError):
        resolve_program(p)


# ---------------------------------------------------------------------------
# property: printer/parser round-trip on generated programs
# ---------------------------------------------------------------------------

names = st.sampled_from(["a", "b", "c"])


@st.composite
def gen_stmt(draw, depth=0):
    choice = draw(st.integers(0, 4 if depth < 2 else 2))
    if choice == 0:
        return Compute(
            draw(st.sampled_from(["", "k"])),
            tuple(draw(st.lists(names, max_size=2, unique=True))),
            tuple(draw(st.lists(names, max_size=2, unique=True))),
        )
    if choice == 1:
        return Redistribute(
            draw(names),
            (
                st.one_of(
                    st.just(("block", None)),
                    st.just(("cyclic", 2)),
                    st.just(("star", None)),
                )
                .map(lambda kv: __import__("repro.lang.ast_nodes", fromlist=["FormatSpec"]).FormatSpec(*kv))
                .example()
                if False
                else draw(
                    st.sampled_from(
                        [
                            __import__(
                                "repro.lang.ast_nodes", fromlist=["FormatSpec"]
                            ).FormatSpec(k, a)
                            for k, a in [("block", None), ("cyclic", 2), ("star", None)]
                        ]
                    )
                ),
            ),
        )
    if choice == 2:
        return Kill((draw(names),))
    if choice == 3:
        return If(
            draw(st.sampled_from(["c1", "c2"])),
            Block(tuple(draw(st.lists(gen_stmt(depth + 1), max_size=2)))),
            Block(tuple(draw(st.lists(gen_stmt(depth + 1), max_size=2)))),
        )
    return Do(
        "i",
        1,
        draw(st.integers(1, 5)),
        Block(tuple(draw(st.lists(gen_stmt(depth + 1), max_size=2)))),
    )


@settings(max_examples=40, deadline=None)
@given(st.lists(gen_stmt(), max_size=5))
def test_prop_print_parse_roundtrip(stmts):
    from repro.lang.ast_nodes import ArrayDecl, Subroutine

    sub = Subroutine(
        "s",
        (),
        (ArrayDecl("a", (8,)), ArrayDecl("b", (8,)), ArrayDecl("c", (8,))),
        Block(tuple(stmts)),
    )
    p = Program((sub,))
    assert parse_program(print_program(p)) == p
