"""Unit and property tests for IntervalSet."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intervals import IntervalSet


def test_empty():
    s = IntervalSet.empty()
    assert len(s) == 0
    assert not s
    assert list(s) == []
    assert 3 not in s


def test_range():
    s = IntervalSet.range(2, 7)
    assert len(s) == 5
    assert list(s) == [2, 3, 4, 5, 6]
    assert 2 in s and 6 in s and 7 not in s and 1 not in s


def test_degenerate_range_is_empty():
    assert not IntervalSet.range(5, 5)
    assert not IntervalSet.range(7, 3)


def test_normalization_merges_adjacent_and_overlapping():
    s = IntervalSet([(0, 3), (3, 5), (7, 9), (8, 12)])
    assert s.intervals == ((0, 5), (7, 12))


def test_from_indices():
    s = IntervalSet.from_indices([5, 1, 2, 3, 9, 2])
    assert s.intervals == ((1, 4), (5, 6), (9, 10))


def test_strided_runs_cyclic_ownership():
    # CYCLIC(2) on 3 procs over [0, 14): proc 1 owns {2,3, 8,9}
    s = IntervalSet.strided_runs(start=2, run=2, period=6, lo=0, hi=14)
    assert list(s) == [2, 3, 8, 9]


def test_strided_runs_clipping_lo():
    s = IntervalSet.strided_runs(start=0, run=3, period=5, lo=4, hi=14)
    # runs [0,3),[5,8),[10,13) clipped to [4,14): [5,8),[10,13)
    assert s.intervals == ((5, 8), (10, 13))


def test_strided_runs_partial_first_run():
    s = IntervalSet.strided_runs(start=0, run=4, period=8, lo=2, hi=20)
    assert s.intervals == ((2, 4), (8, 12), (16, 20))


def test_intersect():
    a = IntervalSet([(0, 10), (20, 30)])
    b = IntervalSet([(5, 25)])
    assert (a & b).intervals == ((5, 10), (20, 25))


def test_union():
    a = IntervalSet([(0, 5)])
    b = IntervalSet([(3, 8), (10, 12)])
    assert (a | b).intervals == ((0, 8), (10, 12))


def test_difference():
    a = IntervalSet([(0, 10)])
    b = IntervalSet([(2, 4), (6, 7)])
    assert (a - b).intervals == ((0, 2), (4, 6), (7, 10))


def test_difference_disjoint():
    a = IntervalSet([(0, 5)])
    b = IntervalSet([(10, 12)])
    assert (a - b) == a


def test_position_and_nth_roundtrip():
    s = IntervalSet([(2, 5), (10, 13)])
    members = list(s)
    for k, x in enumerate(members):
        assert s.position(x) == k
        assert s.nth(k) == x


def test_position_missing_raises():
    s = IntervalSet([(0, 3)])
    with pytest.raises(KeyError):
        s.position(5)


def test_nth_out_of_range():
    s = IntervalSet([(0, 3)])
    with pytest.raises(IndexError):
        s.nth(3)
    with pytest.raises(IndexError):
        s.nth(-1)


def test_min_max():
    s = IntervalSet([(4, 6), (9, 11)])
    assert s.min() == 4
    assert s.max() == 10
    with pytest.raises(ValueError):
        IntervalSet.empty().min()
    with pytest.raises(ValueError):
        IntervalSet.empty().max()


def test_equality_and_hash():
    a = IntervalSet([(0, 3), (3, 6)])
    b = IntervalSet([(0, 6)])
    assert a == b
    assert hash(a) == hash(b)
    assert a != IntervalSet([(0, 5)])


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------

small_sets = st.lists(
    st.tuples(st.integers(-50, 50), st.integers(-50, 50)), max_size=8
).map(IntervalSet)


@given(small_sets, small_sets)
def test_prop_intersection_matches_python_sets(a, b):
    assert set(a & b) == set(a) & set(b)


@given(small_sets, small_sets)
def test_prop_union_matches_python_sets(a, b):
    assert set(a | b) == set(a) | set(b)


@given(small_sets, small_sets)
def test_prop_difference_matches_python_sets(a, b):
    assert set(a - b) == set(a) - set(b)


@given(small_sets)
def test_prop_len_matches_enumeration(a):
    assert len(a) == len(list(a))


@given(small_sets, st.integers(-60, 60))
def test_prop_membership(a, x):
    assert (x in a) == (x in set(a))


@given(small_sets)
def test_prop_position_nth_bijection(a):
    for k, x in enumerate(a):
        assert a.position(x) == k
        assert a.nth(k) == x


@given(
    st.integers(-10, 10),
    st.integers(1, 6),
    st.integers(1, 30),
    st.integers(-5, 30),
    st.integers(-5, 40),
)
def test_prop_strided_runs_match_naive(start, run, period_mult, lo, hi):
    period = run * period_mult
    got = IntervalSet.strided_runs(start, run, period, lo, hi)
    want = {
        x
        for k in range(-20, 60)
        for x in range(start + k * period, start + k * period + run)
        if lo <= x < hi
    }
    assert set(got) == want
