"""Unit tests for copy code generation (paper Fig. 19/20) and reports."""

from __future__ import annotations

import pytest

from repro import CompilerOptions, compilation_report, compile_program
from repro.ir.effects import Use
from repro.remap.codegen import (
    EntryOp,
    ExitOp,
    PoisonOp,
    RemapOp,
    RestoreOp,
    SaveStatusOp,
    render_code,
    render_op,
)

FIG13 = """
subroutine main()
  integer n
  real A(n, n)
!hpf$ dynamic A
!hpf$ distribute A(block, *)
  compute reads A
  if c then
!hpf$   redistribute A(cyclic, *)
    compute writes A
  else
!hpf$   redistribute A(cyclic(2), *)
    compute reads A
  endif
!hpf$ redistribute A(block, *)
  compute reads A
end
"""


def compile_fig13(level=3):
    return compile_program(
        FIG13, bindings={"n": 8}, processors=4, options=CompilerOptions(level=level)
    )


def test_fig20_generated_structure():
    code = compile_fig13().get("main").code
    final = [
        op
        for op in code.all_ops()
        if isinstance(op, RemapOp) and op.leaving == 0 and len(op.reaching) == 2
    ]
    assert len(final) == 1
    op = final[0]
    assert op.reaching == {1, 2}
    assert op.use is Use.R
    text = "\n".join(render_op(op))
    assert "if status(a) == 1: a_0 = a_1" in text
    assert "if status(a) == 2: a_0 = a_2" in text


def test_naive_ops_have_no_status_checks():
    code = compile_fig13(level=0).get("main").code
    remaps = [op for op in code.all_ops() if isinstance(op, RemapOp)]
    assert remaps
    assert all(not op.check_status for op in remaps)
    # naive keeps only the leaving copy
    assert all(op.keep == {op.leaving} for op in remaps)


def test_optimized_keep_sets_follow_M():
    compiled = compile_fig13(level=2)
    code = compiled.get("main").code
    # the else-branch remap keeps copy 0 alive for the return trip
    else_remap = [
        op for op in code.all_ops() if isinstance(op, RemapOp) and op.leaving == 2
    ]
    assert len(else_remap) == 1
    assert 0 in else_remap[0].keep


def test_entry_and_exit_ops_present():
    code = compile_fig13().get("main").code
    assert isinstance(code.entry_ops[0], EntryOp)
    assert isinstance(code.exit_ops[-1], ExitOp)


def test_removed_vertices_generate_nothing():
    src = """
subroutine main()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute reads A
!hpf$ redistribute A(cyclic)
!hpf$ redistribute A(block)
  compute reads A
end
"""
    compiled = compile_program(
        src, bindings={"n": 8}, processors=4, options=CompilerOptions(level=3)
    )
    code = compiled.get("main").code
    remaps = [op for op in code.all_ops() if isinstance(op, RemapOp)]
    # first remap removed (U=N); second survives but its reaching is {0}
    assert len(remaps) == 1
    assert remaps[0].leaving == 0 or remaps[0].reaching == frozenset({0})


def test_kill_generates_poison_op():
    src = """
subroutine main()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
!hpf$ kill A
  compute defines A
end
"""
    compiled = compile_program(src, bindings={"n": 8}, processors=4)
    ops = compiled.get("main").code.all_ops()
    assert any(isinstance(op, PoisonOp) and op.array == "a" for op in ops)


def test_naive_call_restore_uses_save_restore():
    src = """
subroutine foo(X)
  integer n
  real X(n)
  intent inout X
!hpf$ distribute X(block(8))
  compute writes X
end

subroutine main()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(cyclic)
  compute writes A
  if c then
!hpf$   redistribute A(cyclic(2))
    compute reads A
  endif
  call foo(A)
!hpf$ redistribute A(block)
  compute reads A
end
"""
    compiled = compile_program(
        src, bindings={"n": 16}, processors=4, options=CompilerOptions(level=0)
    )
    ops = compiled.get("main").code.all_ops()
    saves = [op for op in ops if isinstance(op, SaveStatusOp)]
    restores = [op for op in ops if isinstance(op, RestoreOp)]
    assert len(saves) == 1 and len(restores) == 1
    assert saves[0].slot == restores[0].slot
    assert restores[0].possible == {0, 1}
    # Fig. 18 rendering: one guarded restore per possible mapping
    text = "\n".join(render_op(restores[0]))
    assert text.count("remap a to") == 2


def test_optimized_removes_unused_ambiguous_restore():
    src = """
subroutine foo(X)
  integer n
  real X(n)
  intent inout X
!hpf$ distribute X(block(8))
  compute writes X
end

subroutine main()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(cyclic)
  compute writes A
  if c then
!hpf$   redistribute A(cyclic(2))
    compute reads A
  endif
  call foo(A)
!hpf$ redistribute A(block)
  compute reads A
end
"""
    compiled = compile_program(
        src, bindings={"n": 16}, processors=4, options=CompilerOptions(level=3)
    )
    ops = compiled.get("main").code.all_ops()
    assert not any(isinstance(op, (SaveStatusOp, RestoreOp)) for op in ops)


def test_render_code_and_report_smoke():
    compiled = compile_fig13()
    text = render_code(compiled.get("main").code)
    assert "status(a)" in text
    report = compilation_report(compiled)
    assert "remapping graph G_R" in report
    assert "a_0" in report and "a_1" in report
    assert "optimization level 3" in report


def test_render_unknown_op_rejected():
    with pytest.raises(TypeError):
        render_op(object())  # type: ignore[arg-type]
