"""Unit and property tests for the HPF mapping substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError, ShapeError
from repro.mapping import (
    Alignment,
    AxisAlign,
    DistFormat,
    DistKind,
    Distribution,
    Mapping,
    ProcessorArrangement,
    Template,
)
from repro.mapping.ownership import affine_preimage, layout_of
from repro.util.intervals import IntervalSet


# ---------------------------------------------------------------------------
# processors
# ---------------------------------------------------------------------------


def test_processor_linear_rank_roundtrip():
    p = ProcessorArrangement("P", (2, 3, 4))
    assert p.size == 24
    for lin in range(p.size):
        assert p.linear_rank(p.coords(lin)) == lin


def test_processor_bad_shape():
    with pytest.raises(ShapeError):
        ProcessorArrangement("P", ())
    with pytest.raises(ShapeError):
        ProcessorArrangement("P", (0,))


def test_processor_bad_coords():
    p = ProcessorArrangement("P", (2, 2))
    with pytest.raises(ShapeError):
        p.linear_rank((2, 0))
    with pytest.raises(ShapeError):
        p.linear_rank((0,))
    with pytest.raises(ShapeError):
        p.coords(4)


# ---------------------------------------------------------------------------
# templates / alignment
# ---------------------------------------------------------------------------


def test_identity_alignment():
    t = Template("T", (10, 10))
    a = Alignment.identity((10, 10), t)
    assert a.aligned_dims == {0: 0, 1: 1}
    assert a.collapsed_dims == ()
    assert a.template_cells((3, 7)) == [3, 7]


def test_transpose_alignment():
    t = Template("T", (10, 10))
    a = Alignment((10, 10), t, (AxisAlign.dim(1), AxisAlign.dim(0)))
    assert a.template_cells((3, 7)) == [7, 3]


def test_offset_stride_alignment():
    t = Template("T", (25,))
    a = Alignment((10,), t, (AxisAlign.dim(0, stride=2, offset=3),))
    assert a.template_cells((4,)) == [11]


def test_collapse_and_replicate():
    t = Template("T", (10, 5))
    # A(i, j) aligned with T(i, *): dim 1 collapsed, template dim 1 replicated
    a = Alignment((10, 8), t, (AxisAlign.dim(0), AxisAlign.replicate()))
    assert a.aligned_dims == {0: 0}
    assert a.collapsed_dims == (1,)
    assert a.template_cells((2, 6)) == [2, None]


def test_const_alignment():
    t = Template("T", (10, 5))
    a = Alignment((10,), t, (AxisAlign.dim(0), AxisAlign.const(3)))
    assert a.template_cells((2,)) == [2, 3]


def test_alignment_image_out_of_template_raises():
    t = Template("T", (10,))
    with pytest.raises(ShapeError):
        Alignment((11,), t, (AxisAlign.dim(0),))
    with pytest.raises(ShapeError):
        Alignment((6,), t, (AxisAlign.dim(0, stride=2),))


def test_alignment_double_use_raises():
    t = Template("T", (10, 10))
    with pytest.raises(MappingError):
        Alignment((10,), t, (AxisAlign.dim(0), AxisAlign.dim(0)))


def test_alignment_composition_affine():
    # B(k) aligned WITH T(2k+1); A(i) aligned WITH B(3i) => A WITH T(6i+1)
    t = Template("T", (64,))
    b_align = Alignment((20,), t, (AxisAlign.dim(0, stride=2, offset=1),))
    a_align = b_align.compose((7,), (AxisAlign.dim(0, stride=3),))
    assert a_align.template == t
    ax = a_align.axes[0]
    assert (ax.stride, ax.offset) == (6, 1)
    assert a_align.template_cells((2,)) == [13]


def test_alignment_composition_replicate():
    t = Template("T", (10, 10))
    b_align = Alignment.identity((10, 10), t)
    a_align = b_align.compose((10,), (AxisAlign.dim(0), AxisAlign.replicate()))
    assert a_align.axes[1].kind.value == "replicate"


# ---------------------------------------------------------------------------
# distribution formats
# ---------------------------------------------------------------------------


def test_block_default_size():
    f = DistFormat.block()
    assert f.resolve_block(10, 4) == 3  # ceil(10/4)
    assert f.resolve_block(12, 4) == 3


def test_block_explicit_too_small_raises():
    f = DistFormat.block(2)
    with pytest.raises(ShapeError):
        f.resolve_block(10, 4)  # 2*4 < 10


def test_cyclic_default_is_one():
    assert DistFormat.cyclic().resolve_block(10, 4) == 1
    assert DistFormat.cyclic(3).resolve_block(10, 4) == 3


def test_bad_block_sizes():
    with pytest.raises(MappingError):
        DistFormat.block(0)
    with pytest.raises(MappingError):
        DistFormat.cyclic(-1)


def test_distribution_dim_count_mismatch():
    t = Template("T", (10, 10))
    p = ProcessorArrangement("P", (4,))
    with pytest.raises(ShapeError):
        Distribution(t, (DistFormat.block(),), p)
    with pytest.raises(ShapeError):
        # two distributed dims but 1-D processor grid
        Distribution(t, (DistFormat.block(), DistFormat.block()), p)


def test_distribution_proc_dim_assignment():
    t = Template("T", (10, 10, 10))
    p = ProcessorArrangement("P", (2, 3))
    d = Distribution(t, (DistFormat.block(), DistFormat.star(), DistFormat.cyclic()), p)
    assert d.proc_dim_of(0) == 0
    assert d.proc_dim_of(1) is None
    assert d.proc_dim_of(2) == 1
    kind, block, pd, n = d.resolved(2)
    assert (kind, block, pd, n) == (DistKind.CYCLIC, 1, 1, 3)


# ---------------------------------------------------------------------------
# normalized mappings
# ---------------------------------------------------------------------------


def mk_simple(shape, fmts, pshape=(4,), name="A"):
    return Mapping.simple(shape, fmts, ProcessorArrangement("P", pshape), name)


def test_simple_block_mapping_dim_maps():
    m = mk_simple((16,), (DistFormat.block(),))
    (dm,) = m.dim_maps
    assert dm.is_distributed
    assert dm.kind is DistKind.BLOCK and dm.block == 4 and dm.nprocs == 4
    assert dm.owner_coordinate(0) == 0
    assert dm.owner_coordinate(15) == 3


def test_simple_cyclic_mapping_owner():
    m = mk_simple((16,), (DistFormat.cyclic(),))
    (dm,) = m.dim_maps
    assert [dm.owner_coordinate(i) for i in range(6)] == [0, 1, 2, 3, 0, 1]


def test_mapping_equality_by_signature():
    a = mk_simple((16, 16), (DistFormat.block(), DistFormat.star()), name="A")
    b = mk_simple((16, 16), (DistFormat.block(), DistFormat.star()), name="B")
    c = mk_simple((16, 16), (DistFormat.star(), DistFormat.block()), name="A")
    assert a.same_layout(b)  # template names differ, layout identical
    assert not a.same_layout(c)


def test_block_vs_cyclic_same_when_block_covers_everything():
    # CYCLIC(4) on 4 procs over 16 elements == BLOCK: same ownership
    blk = mk_simple((16,), (DistFormat.block(),))
    cyc = mk_simple((16,), (DistFormat.cyclic(4),))
    la, lb = layout_of(blk), layout_of(cyc)
    for q in blk.processors.all_coords():
        assert la.owned(q) == lb.owned(q)


def test_transposed_alignment_changes_layout():
    t = Template("T", (8, 8))
    p = ProcessorArrangement("P", (2,))
    dist = Distribution(t, (DistFormat.block(), DistFormat.star()), p)
    ident = Mapping(Alignment.identity((8, 8), t), dist)
    trans = Mapping(
        Alignment((8, 8), t, (AxisAlign.dim(1), AxisAlign.dim(0))), dist
    )
    assert not ident.same_layout(trans)
    # identity: rows split; transpose: columns split
    li, lt = layout_of(ident), layout_of(trans)
    assert li.owned((0,))[0].intervals == ((0, 4),)
    assert li.owned((0,))[1].intervals == ((0, 8),)
    assert lt.owned((0,))[0].intervals == ((0, 8),)
    assert lt.owned((0,))[1].intervals == ((0, 4),)


def test_alignment_distribution_mismatch_raises():
    t1, t2 = Template("T1", (8,)), Template("T2", (8,))
    p = ProcessorArrangement("P", (2,))
    with pytest.raises(ShapeError):
        Mapping(Alignment.identity((8,), t1), Distribution(t2, (DistFormat.block(),), p))


# ---------------------------------------------------------------------------
# layouts / ownership
# ---------------------------------------------------------------------------


def test_affine_preimage_identity():
    cells = IntervalSet([(4, 8)])
    assert affine_preimage(cells, 1, 0, 10).intervals == ((4, 8),)
    assert affine_preimage(cells, 1, 2, 10).intervals == ((2, 6),)


def test_affine_preimage_stride2():
    cells = IntervalSet([(0, 10)])
    got = affine_preimage(cells, 2, 1, 10)  # 2i+1 in [0,10) -> i in 0..4
    assert list(got) == [0, 1, 2, 3, 4]


def test_affine_preimage_negative_stride():
    cells = IntervalSet([(0, 4)])
    got = affine_preimage(cells, -1, 9, 10)  # 9-i in [0,4) -> i in 6..9
    assert list(got) == [6, 7, 8, 9]


def test_block_ownership_partition():
    m = mk_simple((10,), (DistFormat.block(),))  # block=3 on 4 procs
    lay = layout_of(m)
    assert list(lay.owned((0,))[0]) == [0, 1, 2]
    assert list(lay.owned((3,))[0]) == [9]
    total = set()
    for q in m.processors.all_coords():
        s = set(lay.owned(q)[0])
        assert not (total & s)
        total |= s
    assert total == set(range(10))


def test_cyclic2_ownership():
    m = mk_simple((14,), (DistFormat.cyclic(2),), pshape=(3,))
    lay = layout_of(m)
    assert list(lay.owned((1,))[0]) == [2, 3, 8, 9]


def test_owner_coords_and_primary_owner():
    m = mk_simple((10, 10), (DistFormat.block(), DistFormat.cyclic()), pshape=(2, 2))
    lay = layout_of(m)
    owners = lay.owner_coords((7, 3))
    assert owners == [(1, 1)]
    assert lay.primary_owner((7, 3)) == (1, 1)


def test_replicated_array_has_multiple_owners():
    t = Template("T", (8, 4))
    p = ProcessorArrangement("P", (2, 4))
    dist = Distribution(t, (DistFormat.block(), DistFormat.block()), p)
    align = Alignment((8,), t, (AxisAlign.dim(0), AxisAlign.replicate()))
    m = Mapping(align, dist)
    lay = layout_of(m)
    owners = lay.owner_coords((0,))
    assert len(owners) == 4  # replicated across the 4 procs of grid dim 1
    assert lay.primary_owner((0,)) == (0, 0)
    assert lay.replication_degree == 4


def test_pinned_array_lives_on_slice():
    t = Template("T", (8, 8))
    p = ProcessorArrangement("P", (2, 2))
    dist = Distribution(t, (DistFormat.block(), DistFormat.block()), p)
    # A(i) WITH T(i, 6): pinned to grid coordinate owning cell 6 => coord 1
    align = Alignment((8,), t, (AxisAlign.dim(0), AxisAlign.const(6)))
    m = Mapping(align, dist)
    lay = layout_of(m)
    assert lay.holders() == [(0, 1), (1, 1)]
    assert lay.owned((0, 0)) is None


def test_local_numbering_roundtrip():
    m = mk_simple((10, 12), (DistFormat.cyclic(3), DistFormat.block()), pshape=(2, 3))
    lay = layout_of(m)
    for q in m.processors.all_coords():
        owned = lay.owned(q)
        shape = lay.local_shape(q)
        for i in owned[0]:
            for j in owned[1]:
                loc = lay.global_to_local(q, (i, j))
                assert all(0 <= c < s for c, s in zip(loc, shape))
                assert lay.local_to_global(q, loc) == (i, j)


def test_dim_is_local():
    m = mk_simple((8, 8), (DistFormat.block(), DistFormat.star()))
    lay = layout_of(m)
    assert not lay.dim_is_local(0)
    assert lay.dim_is_local(1)


# ---------------------------------------------------------------------------
# property-based: ownership partitions the index space
# ---------------------------------------------------------------------------

fmt_strategy = st.one_of(
    st.just(DistFormat.star()),
    st.builds(DistFormat.cyclic, st.one_of(st.none(), st.integers(1, 4))),
    st.just(DistFormat.block()),
)


@settings(max_examples=60, deadline=None)
@given(
    extent=st.integers(1, 24),
    fmt=fmt_strategy,
    nprocs=st.integers(1, 5),
)
def test_prop_1d_ownership_partitions(extent, fmt, nprocs):
    pshape = () if not fmt.is_distributed else (nprocs,)
    if not fmt.is_distributed:
        # wrap in a 1-proc arrangement to satisfy validation
        pshape = (1,)
        fmts = (fmt, DistFormat.block())
        m = Mapping.simple((extent, 2), fmts, ProcessorArrangement("P", pshape))
        dims = [0]
    else:
        m = Mapping.simple((extent,), (fmt,), ProcessorArrangement("P", pshape))
        dims = [0]
    lay = layout_of(m)
    seen: dict[int, int] = {}
    for q in m.processors.all_coords():
        owned = lay.owned(q)
        assert owned is not None
        for i in owned[dims[0]]:
            seen[i] = seen.get(i, 0) + 1
    # every index owned exactly once per holder count along other dims
    assert set(seen) == set(range(extent))
    assert len(set(seen.values())) == 1


@settings(max_examples=40, deadline=None)
@given(
    n0=st.integers(1, 12),
    n1=st.integers(1, 12),
    f0=fmt_strategy,
    f1=fmt_strategy,
    p0=st.integers(1, 3),
    p1=st.integers(1, 3),
)
def test_prop_2d_every_element_has_primary_owner(n0, n1, f0, f1, p0, p1):
    nd = sum(1 for f in (f0, f1) if f.is_distributed)
    pshape = tuple(s for f, s in ((f0, p0), (f1, p1)) if f.is_distributed)
    if nd == 0:
        pshape = (1,)
        f1 = DistFormat.block()
        pshape = (1,)
    m = Mapping.simple(
        (n0, n1), (f0, f1), ProcessorArrangement("P", pshape or (1,))
    )
    lay = layout_of(m)
    for i in range(0, n0, max(1, n0 // 3)):
        for j in range(0, n1, max(1, n1 // 3)):
            q = lay.primary_owner((i, j))
            owned = lay.owned(q)
            assert owned is not None
            assert i in owned[0] and j in owned[1]
