"""Experiment S1 (ROADMAP: serve repeated compile traffic fast).

A :class:`CompilerSession` memoizes compiled artifacts, so repeated
compile/run traffic for the same (source, bindings, pass set) key pays a
cache lookup instead of the full pipeline.  Measured across the four apps
(adi, fft2d, lu, sar): warm compiles must do *zero* pipeline-pass work
(the session's ``passes_run`` counter is flat) and be at least 10x faster
than cold compiles.
"""

from __future__ import annotations

import time

from repro import CompilerSession
from repro.apps.adi import build_adi_program
from repro.apps.fft2d import build_fft2d_program
from repro.apps.lu import build_lu_program
from repro.apps.sar import build_sar_program

N = 64
APPS = {
    "adi": lambda: build_adi_program(N),
    "fft2d": lambda: build_fft2d_program(N),
    "lu": lambda: build_lu_program(N, block=16)[0],
    "sar": lambda: build_sar_program(N),
}
WARM_ITERS = 50


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_compile_cache_cold_vs_warm(benchmark):
    session = CompilerSession(processors=4)
    cold_s: dict[str, float] = {}
    warm_s: dict[str, float] = {}
    programs = {name: build() for name, build in APPS.items()}

    for name, prog in programs.items():
        cold_s[name] = _time(lambda p=prog: session.compile(p))
        passes_after_cold = session.passes_run
        t0 = time.perf_counter()
        for _ in range(WARM_ITERS):
            session.compile(prog)
        warm_s[name] = (time.perf_counter() - t0) / WARM_ITERS
        # zero parse/construction work on the warm path (pass-trace counters)
        assert session.passes_run == passes_after_cold

    assert session.stats["misses"] == len(APPS)
    assert session.stats["hits"] == len(APPS) * WARM_ITERS

    for name in APPS:
        speedup = cold_s[name] / warm_s[name]
        assert speedup >= 10.0, f"{name}: warm only {speedup:.1f}x faster"

    # steady-state serving: every request after the first is a hit
    benchmark(lambda: session.compile(programs["adi"]))
    benchmark.extra_info.update(
        {
            **{f"cold_ms_{k}": round(v * 1e3, 4) for k, v in cold_s.items()},
            **{f"warm_us_{k}": round(v * 1e6, 3) for k, v in warm_s.items()},
            **{
                f"speedup_{k}": round(cold_s[k] / warm_s[k], 1) for k in APPS
            },
            "hit_rate": session.stats["hit_rate"],
        }
    )


def test_compile_cache_hit_rate_mixed_traffic(benchmark):
    """A request mix over all four apps at two sizes: 8 distinct keys."""

    def serve():
        session = CompilerSession(processors=4)
        for _ in range(5):
            for name, build in APPS.items():
                session.compile(build())
            session.compile(build_adi_program(32))
            session.compile(build_lu_program(32, block=8)[0])
            session.compile(build_fft2d_program(32))
            session.compile(build_sar_program(32))
        return session

    session = serve()
    assert session.stats["misses"] == 8
    assert session.stats["hits"] == 8 * 4
    assert session.stats["hit_rate"] == 0.8

    session = benchmark(serve)
    benchmark.extra_info.update(
        {
            "distinct_keys": session.stats["misses"],
            "requests": session.stats["hits"] + session.stats["misses"],
            "hit_rate": session.stats["hit_rate"],
            "passes_run": session.stats["passes_run"],
        }
    )
