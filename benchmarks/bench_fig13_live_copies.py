"""Experiment F13/F14 (paper Fig. 13/14): flow-dependent live copies.

A is remapped differently in two branches (modified in one, only read in
the other) and remapped back afterwards.  Whether the original copy is
still reusable depends on the path taken -- "the liveness management is
delayed until run time".  We execute both paths and measure the final
remapping's cost on each.
"""

from __future__ import annotations

import numpy as np

FIG13 = """
subroutine main()
  integer n
  real A(n, n)
!hpf$ dynamic A
!hpf$ distribute A(block, *)
  compute reads A
  if c then
!hpf$   redistribute A(cyclic, *)
    compute writes A
  else
!hpf$   redistribute A(cyclic(2), *)
    compute reads A
  endif
!hpf$ redistribute A(block, *)
  compute reads A
end
"""

N = 64


def _inputs():
    return {"a": np.arange(N * N, dtype=float).reshape(N, N)}


def test_fig13_live_copies(benchmark, run_program):
    # else path: A only read under the temporary mapping -> copy 0 live ->
    # the final remapping back is free
    _, m_else, _ = run_program(
        FIG13, level=2, bindings={"n": N}, conditions={"c": False}, inputs=_inputs()
    )
    # then path: A written -> copy 0 stale -> the final remapping pays
    _, m_then, _ = run_program(
        FIG13, level=2, bindings={"n": N}, conditions={"c": True}, inputs=_inputs()
    )
    assert m_else.stats.remaps_skipped_live == 1
    assert m_then.stats.remaps_skipped_live == 0
    assert m_then.stats.bytes > m_else.stats.bytes

    benchmark(
        lambda: run_program(
            FIG13, level=2, bindings={"n": N}, conditions={"c": False}, inputs=_inputs()
        )
    )
    benchmark.extra_info.update(
        {
            "then_path_bytes": m_then.stats.bytes,
            "else_path_bytes": m_else.stats.bytes,
            "else_path_reuses_live_copy": m_else.stats.remaps_skipped_live,
        }
    )
