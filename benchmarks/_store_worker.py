"""Subprocess worker for the cross-process store benchmark.

``python _store_worker.py <mode> <store_dir>`` runs in a *fresh* Python
process (that is the point: no in-memory cache can leak in) and prints a
JSON report on stdout:

* ``populate`` -- compile the mixed workload through a store-backed
  session (writing every artifact to disk), execute each app and report
  the result-value digests;
* ``warm``  -- artifact-acquisition latency per app when every compile is
  served from the populated store (asserts tier == "disk");
* ``cold``  -- the same measurement with no store attached (every
  compile runs the full pipeline).

Latencies are the minimum over ``trials`` fresh sessions, so the numbers
measure the tier (pipeline vs verified disk load), not scheduler noise.
Imports and interpreter start-up are excluded by construction -- timing
starts after the workload is built.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _store_workload import NPROCS, OPTIONS, mixed_workload, run_and_digest

from repro import ArtifactStore, CompilerSession

TRIALS = 5


def main() -> int:
    mode, store_dir = sys.argv[1], sys.argv[2]
    workload = mixed_workload()
    report: dict[str, object] = {"mode": mode}

    if mode == "populate":
        store = ArtifactStore(store_dir)
        session = CompilerSession(processors=NPROCS, options=OPTIONS, store=store)
        tiers = [
            session.compile_traced(w["source"], bindings=w["bindings"])[1]
            for w in workload
        ]
        report["tiers"] = tiers
        report["store_writes"] = session.stats["store_writes"]
        report["digests"] = {w["app"]: run_and_digest(session, w) for w in workload}
        print(json.dumps(report))
        return 0

    expected_tier = {"warm": "disk", "cold": "compiled"}[mode]
    per_app: dict[str, float] = {}
    first_s = total_s = float("inf")
    for _ in range(TRIALS):
        # a fresh session per trial: empty memory cache, so every compile
        # exercises the tier under measurement
        store = ArtifactStore(store_dir) if mode == "warm" else None
        session = CompilerSession(processors=NPROCS, options=OPTIONS, store=store)
        latencies = []
        for w in workload:
            t0 = time.perf_counter()
            _, tier = session.compile_traced(w["source"], bindings=w["bindings"])
            latencies.append(time.perf_counter() - t0)
            assert tier == expected_tier, (w["app"], tier, expected_tier)
        first_s = min(first_s, latencies[0])
        total_s = min(total_s, sum(latencies))
        for w, s in zip(workload, latencies):
            per_app[w["app"]] = min(per_app.get(w["app"], float("inf")), s)
    report["first_ms"] = first_s * 1e3
    report["total_ms"] = total_s * 1e3
    report["per_app_ms"] = {app: s * 1e3 for app, s in per_app.items()}
    if mode == "warm":
        report["store_hits"] = session.stats["store_hits"]
        report["passes_run"] = session.stats["passes_run"]
    # execute on the last session: results must be bit-identical across
    # processes and tiers
    report["digests"] = {w["app"]: run_and_digest(session, w) for w in workload}
    print(json.dumps(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
