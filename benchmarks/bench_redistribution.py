"""Experiment Q8: redistribution schedule cost (paper Sec. 2.3, ref. [19]).

Block <-> cyclic(b) redistribution is the primitive everything else pays
for.  We check the closed-form communication volume (every element whose
owner changes moves exactly once) and measure schedule construction plus
execution time across processor counts and block sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping import DistFormat, Mapping, ProcessorArrangement
from repro.mapping.ownership import layout_of
from repro.spmd import DistributedArray, Machine, build_schedule
from repro.spmd.redistribution import redistribute


def _count_moving(n: int, src, dst, nprocs: int) -> int:
    """Closed form check: elements whose primary owner changes."""
    procs = ProcessorArrangement("P", (nprocs,))
    ls = layout_of(Mapping.simple((n,), (src,), procs))
    ld = layout_of(Mapping.simple((n,), (dst,), procs))
    return sum(
        1 for i in range(n) if ls.primary_owner((i,)) != ld.primary_owner((i,))
    )


@pytest.mark.parametrize("nprocs", [2, 4, 8])
def test_block_to_cyclic_volume(benchmark, nprocs):
    n = 1 << 12
    procs = ProcessorArrangement("P", (nprocs,))
    machine = Machine(procs)
    src = DistributedArray("a", Mapping.simple((n,), (DistFormat.block(),), procs), machine)
    dst = DistributedArray("a", Mapping.simple((n,), (DistFormat.cyclic(),), procs), machine)
    src.scatter_from_global(np.arange(float(n)))

    moving = _count_moving(n, DistFormat.block(), DistFormat.cyclic(), nprocs)

    def once():
        machine.reset_stats()
        redistribute(src, dst, machine)
        return machine.stats.bytes

    moved_bytes = benchmark(once)
    assert moved_bytes == moving * 8
    # block->cyclic on P procs moves the (P-1)/P fraction
    assert moving == pytest.approx(n * (nprocs - 1) / nprocs, rel=0.01)
    benchmark.extra_info.update(
        {"n": n, "procs": nprocs, "elements_moved": moving, "bytes": moved_bytes}
    )


@pytest.mark.parametrize("b", [1, 2, 8, 64])
def test_cyclic_block_sizes_schedule(benchmark, b):
    n = 1 << 12
    nprocs = 8
    procs = ProcessorArrangement("P", (nprocs,))
    src_l = layout_of(Mapping.simple((n,), (DistFormat.block(),), procs))
    dst_l = layout_of(Mapping.simple((n,), (DistFormat.cyclic(b),), procs))

    sched = benchmark(lambda: build_schedule(src_l, dst_l))
    total = sched.total_elements()
    assert total == n  # exact cover
    benchmark.extra_info.update(
        {
            "block_size": b,
            "messages": sched.message_count,
            "local": sched.local_count,
            "moved_elements": sched.moved_elements(),
        }
    )


def test_2d_transpose_schedule(benchmark):
    n, nprocs = 256, 8
    procs = ProcessorArrangement("P", (nprocs,))
    rows = layout_of(
        Mapping.simple((n, n), (DistFormat.block(), DistFormat.star()), procs)
    )
    cols = layout_of(
        Mapping.simple((n, n), (DistFormat.star(), DistFormat.block()), procs)
    )
    sched = benchmark(lambda: build_schedule(rows, cols))
    # all-to-all: P*(P-1) messages + P local diagonal blocks
    assert sched.message_count == nprocs * (nprocs - 1)
    assert sched.local_count == nprocs
    assert sched.total_elements() == n * n
    benchmark.extra_info.update(
        {"messages": sched.message_count, "elements": sched.total_elements()}
    )
