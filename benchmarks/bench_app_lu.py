"""Experiment Q3 (paper Sec. 1, ref. [2]): block LU with phase remappings.

The solver alternates row-block and cyclic-cyclic distributions each outer
step.  Validated against sequential Doolittle; optimized traffic must not
exceed naive.
"""

from __future__ import annotations

import numpy as np

from repro.apps.lu import run_lu


def test_lu(benchmark):
    r0 = run_lu(n=32, block=8, nprocs=4, level=0)
    r3 = run_lu(n=32, block=8, nprocs=4, level=3)
    assert r0.correct and r3.correct
    assert np.allclose(r0.value, r3.value)
    assert r3.stats["bytes"] <= r0.stats["bytes"]

    result = benchmark(lambda: run_lu(n=32, block=8, nprocs=4, level=3))
    assert result.correct
    benchmark.extra_info.update(
        {
            "max_error": result.max_error,
            "remaps": result.stats["remaps_performed"],
            "optimized_bytes": r3.stats["bytes"],
            "naive_bytes": r0.stats["bytes"],
        }
    )
