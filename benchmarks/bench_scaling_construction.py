"""Experiment Q5 (paper Appendix B): construction complexity.

The paper bounds the propagation + graph construction at
O(n * s * m^2 * p^2) for n CFG vertices, m remapping statements and p
distributed arrays.  We measure construction time on parameterized chain
and branchy programs to confirm polynomial (not exploding) scaling.
"""

from __future__ import annotations

import pytest

from repro.apps.workloads import branchy_subroutine, chain_subroutine
from repro.ir.cfg import build_cfg
from repro.lang import resolve_program
from repro.mapping import ProcessorArrangement
from repro.remap import build_remapping_graph

P4 = ProcessorArrangement("P", (4,))


def _construct(program):
    resolved = resolve_program(program, bindings={}, default_processors=P4)
    sub = next(iter(resolved.subroutines.values()))
    return build_remapping_graph(build_cfg(sub), resolved)


@pytest.mark.parametrize("m", [4, 16, 64])
def test_construction_scaling_chain_length(benchmark, m):
    program = chain_subroutine(m=m, p=2)
    res = benchmark(lambda: _construct(program))
    benchmark.extra_info.update(
        {"remap_statements": m, "gr_vertices": len(res.graph.vertices)}
    )
    assert len(res.graph.vertices) == m + 3  # + v_c, v_0, v_e


@pytest.mark.parametrize("p", [1, 4, 16])
def test_construction_scaling_array_count(benchmark, p):
    program = chain_subroutine(m=8, p=p)
    res = benchmark(lambda: _construct(program))
    benchmark.extra_info.update(
        {"arrays": p, "gr_vertices": len(res.graph.vertices)}
    )


@pytest.mark.parametrize("m", [2, 8, 32])
def test_construction_scaling_branchy(benchmark, m):
    program = branchy_subroutine(m=m, p=2)
    res = benchmark(lambda: _construct(program))
    benchmark.extra_info.update(
        {"branches": m, "gr_vertices": len(res.graph.vertices)}
    )
