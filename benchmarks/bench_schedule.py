"""Experiment SCHED: communication-schedule policies across machine sizes.

For a family of classic redistribution patterns (block<->cyclic,
cyclic<->cyclic with different block sizes, 2-D transpose) and machine
sizes, build the exact transfer schedule and phase it under each policy:
``naive`` (all rectangles at once, ports contended), ``round-robin``
(contention-free one-port rounds) and ``aggregate`` (per-pair packed
messages, then round-robin).

The shape asserted, on every benchmarked redistribution:

* round-robin makespan <= naive makespan (phasing never loses),
* aggregation never increases the message count (and never changes bytes),
* executed traffic is identical across policies (bytes, data values).

Results are written machine-readable to ``BENCH_schedule.json`` (or the
shared ``--json PATH`` flag) so the perf trajectory is recorded:
per pattern x machine size, the message counts, phase counts and makespans
of all three policies.

``BENCH_SCHEDULE_SIZES`` (comma-separated processor counts) shrinks or
grows the sweep for CI smoke runs.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis.commsafety import certify_plan

from repro.mapping import DistFormat, Mapping, ProcessorArrangement
from repro.spmd import (
    CostModel,
    DistributedArray,
    Machine,
    build_comm_schedule,
    build_schedule,
    scheduled_redistribute,
)
from repro.mapping.ownership import layout_of

SIZES = tuple(
    int(s) for s in os.environ.get("BENCH_SCHEDULE_SIZES", "4,8,16").split(",")
)
POLICIES = ("naive", "round-robin", "aggregate")
COST = CostModel()
ITEMSIZE = 8


def _patterns(nprocs: int):
    """Redistribution patterns scaled to the machine size."""
    p = ProcessorArrangement("P", (nprocs,))
    n = 16 * nprocs
    b, c1 = DistFormat.block(), DistFormat.cyclic()
    c2, c3 = DistFormat.cyclic(2), DistFormat.cyclic(3)
    star = DistFormat.star()
    return {
        "block->cyclic": (
            Mapping.simple((n,), (b,), p),
            Mapping.simple((n,), (c1,), p),
        ),
        "block->cyclic(2)": (
            Mapping.simple((n,), (b,), p),
            Mapping.simple((n,), (c2,), p),
        ),
        "cyclic->cyclic(3)": (
            Mapping.simple((n,), (c1,), p),
            Mapping.simple((n,), (c3,), p),
        ),
        "transpose2d": (
            Mapping.simple((n, n), (b, star), p),
            Mapping.simple((n, n), (star, b), p),
        ),
    }


def _measure(src: Mapping, dst: Mapping) -> dict:
    redist = build_schedule(layout_of(src), layout_of(dst))
    out: dict[str, dict] = {}
    executed_bytes: set[int] = set()
    values: list[np.ndarray] = []
    for policy in POLICIES:
        plan = build_comm_schedule(redist, policy)
        plan.validate()
        procs = src.processors
        machine = Machine(procs)
        s = DistributedArray("A", src, machine)
        d = DistributedArray("A", dst, machine)
        data = np.arange(float(np.prod(src.shape))).reshape(src.shape)
        s.scatter_from_global(data)
        scheduled_redistribute(s, d, machine, policy=policy, plan=plan)
        values.append(d.gather_to_global())
        executed_bytes.add(machine.stats.bytes)
        out[policy] = {
            "messages": plan.message_count,
            "phases": plan.phase_count,
            "makespan_us": plan.makespan(COST, ITEMSIZE) * 1e6,
            "bytes": machine.stats.bytes,
            "elapsed_us": machine.elapsed * 1e6,
        }
    # identical traffic and identical delivered values across policies
    assert len(executed_bytes) == 1
    for v in values[1:]:
        assert np.array_equal(values[0], v)
    return out


def _measure_verified_fast_path(nprocs: int, repeats: int = 30) -> dict:
    """Warm-replay cost of a plan with and without the static safety stamp.

    ``Machine.run_phase`` re-validates one-port safety (O(messages) per
    phase) unless the plan was proven safe at compile time
    (:mod:`repro.analysis.commsafety`).  Replaying the same redistribution
    through a certified and an uncertified copy of the *same* plan
    isolates exactly that validation cost -- traffic must be identical.
    """
    src, dst = _patterns(nprocs)["cyclic->cyclic(3)"]
    redist = build_schedule(layout_of(src), layout_of(dst))
    plan = build_comm_schedule(redist, "round-robin")
    certified = certify_plan(src, dst, plan)
    assert certified.statically_verified, "fast-path plan failed certification"
    data = np.arange(float(np.prod(src.shape))).reshape(src.shape)

    def replay(p) -> tuple[float, int, int, np.ndarray]:
        machine = Machine(src.processors)
        s = DistributedArray("A", src, machine)
        d = DistributedArray("A", dst, machine)
        s.scatter_from_global(data)
        t0 = time.perf_counter()
        for _ in range(repeats):
            scheduled_redistribute(s, d, machine, policy="round-robin", plan=p)
        dt = time.perf_counter() - t0
        return dt, machine.stats.bytes, machine.stats.messages, d.gather_to_global()

    # interleave would be fairer still, but a single warmup replay of each
    # suffices to take import/alloc noise out of the comparison
    replay(plan), replay(certified)
    slow_s, slow_bytes, slow_msgs, slow_vals = replay(plan)
    fast_s, fast_bytes, fast_msgs, fast_vals = replay(certified)
    assert slow_bytes == fast_bytes
    assert slow_msgs == fast_msgs
    assert np.array_equal(slow_vals, fast_vals)
    return {
        "pattern": f"cyclic->cyclic(3)@P{nprocs}",
        "repeats": repeats,
        "unverified_us": slow_s * 1e6,
        "verified_us": fast_s * 1e6,
        "speedup": slow_s / fast_s if fast_s > 0 else 1.0,
        "bytes": fast_bytes,
        "messages": fast_msgs,
    }


#: the fused-replay workload: a 16-trip loop whose body remaps two
#: arrays out to cyclic and back to block around two computes -- the
#: steady state the executor's trace-and-replay fast path exists for
FUSED_LOOP_SRC = """
subroutine fused_bench()
  integer n, t
  real a(n), b(n), c(n)
!hpf$ dynamic a, b, c
!hpf$ distribute a(block)
!hpf$ distribute b(block)
!hpf$ distribute c(block)
  compute defines a, b, c
  do i = 1, t
!hpf$   redistribute a(cyclic)
!hpf$   redistribute b(cyclic)
    compute writes c reads a, b
!hpf$   redistribute a(block)
!hpf$   redistribute b(block)
    compute writes a, b reads c
  enddo
  compute reads a, b, c
end
"""


def _measure_fused_replay(
    trips: int = 16, nprocs: int = 4, best_of: int = 7
) -> dict:
    """Steady-state speedup of fused loop replay vs plain execution.

    The same compiled artifact runs with ``fuse_loops`` on and off,
    best-of-``best_of`` wall time each way; traffic and values must be
    bit-identical (the fusion contract), and the fused run must prove it
    took the fast path via its replay counters.
    """
    from repro import CompilerOptions, ExecutionEnv, Executor, compile_program

    bindings = {"n": 16 * nprocs, "t": trips}
    compiled = compile_program(
        FUSED_LOOP_SRC,
        bindings=bindings,
        processors=nprocs,
        options=CompilerOptions(level=3, schedule="round-robin"),
    )

    def once(fuse: bool):
        env = ExecutionEnv(conditions={}, bindings=bindings, fuse_loops=fuse)
        machine = Machine(compiled.processors)
        t0 = time.perf_counter()
        result = Executor(compiled, machine, env).run("fused_bench")
        return time.perf_counter() - t0, result

    once(True), once(False)  # warmup takes import/alloc noise out
    fused_s = unfused_s = float("inf")
    for _ in range(best_of):
        dt, fused = once(True)
        fused_s = min(fused_s, dt)
        dt, unfused = once(False)
        unfused_s = min(unfused_s, dt)

    # the fusion contract: replay is invisible except in wall time
    for name in ("a", "b", "c"):
        assert np.array_equal(fused.value(name), unfused.value(name))
    assert fused.stats.snapshot() == unfused.stats.snapshot()
    # two recording passes, then every remaining trip replays
    assert fused.fusion.traces_recorded == 2
    assert fused.fusion.replays == trips - 2
    assert unfused.fusion.replays == 0
    snap = fused.stats.snapshot()
    return {
        "pattern": f"fused-loop@P{nprocs}",
        "trips": trips,
        "best_of": best_of,
        "unfused_us": unfused_s * 1e6,
        "fused_us": fused_s * 1e6,
        "speedup": unfused_s / fused_s if fused_s > 0 else 1.0,
        "replays": fused.fusion.replays,
        "bytes": snap["bytes"],
        "messages": snap["messages"],
    }


def test_schedule_policies_across_machine_sizes(benchmark, bench_json):
    results: dict[str, dict] = {}
    for nprocs in SIZES:
        for name, (src, dst) in _patterns(nprocs).items():
            r = _measure(src, dst)
            results[f"{name}@P{nprocs}"] = r
            # the performance invariants, on every benchmarked redistribution
            assert r["round-robin"]["makespan_us"] <= r["naive"]["makespan_us"]
            assert r["aggregate"]["messages"] <= r["round-robin"]["messages"]
            assert r["aggregate"]["bytes"] == r["round-robin"]["bytes"]

    fast_path = _measure_verified_fast_path(max(SIZES))
    fused = _measure_fused_replay()
    # the headline claim, asserted at measurement time and re-gated by
    # check_regression.py against the committed baseline
    assert fused["speedup"] >= 1.5, fused

    path = bench_json("BENCH_schedule.json", {
        "experiment": "schedule-policies",
        "sizes": list(SIZES),
        "cost_model": {"alpha": COST.alpha, "beta": COST.beta},
        "results": results,
        "verified_fast_path": fast_path,
        "fused_replay": fused,
    })

    # ratio summaries skip zero-traffic cases (P=1 sweeps are purely local)
    speedups = [
        results[k]["naive"]["makespan_us"] / results[k]["round-robin"]["makespan_us"]
        for k in results
        if results[k]["round-robin"]["makespan_us"] > 0
    ] or [1.0]
    saved = [
        1.0 - results[k]["aggregate"]["messages"] / results[k]["round-robin"]["messages"]
        for k in results
        if results[k]["round-robin"]["messages"] > 0
    ] or [0.0]

    small = _patterns(SIZES[0])["block->cyclic"]
    benchmark(lambda: _measure(*small))
    benchmark.extra_info.update(
        {
            "json_path": path,
            "cases": len(results),
            "rr_speedup_min": round(min(speedups), 3),
            "rr_speedup_max": round(max(speedups), 3),
            "agg_msg_reduction_max": round(max(saved), 3),
            "verified_fast_path_speedup": round(fast_path["speedup"], 3),
            "fused_replay_speedup": round(fused["speedup"], 3),
        }
    )
