"""Experiment Q1 (paper Sec. 1): ADI.

The paper's canonical workload.  Validated against a sequential NumPy
reference; the interesting *shape* is that all of ADI's remappings are
essential (the array is rewritten under each mapping), so the
optimizations neither help nor hurt its steady-state traffic.
"""

from __future__ import annotations

import numpy as np

from repro.apps.adi import run_adi


def test_adi(benchmark):
    r0 = run_adi(n=64, steps=4, nprocs=4, level=0)
    r3 = run_adi(n=64, steps=4, nprocs=4, level=3)
    assert r0.correct and r3.correct
    assert np.allclose(r0.value, r3.value)
    assert r3.stats["bytes"] == r0.stats["bytes"]  # honest negative control

    result = benchmark(lambda: run_adi(n=64, steps=4, nprocs=4, level=3))
    assert result.correct
    benchmark.extra_info.update(
        {
            "max_error": result.max_error,
            "remaps": result.stats["remaps_performed"],
            "bytes": result.stats["bytes"],
            "naive_bytes": r0.stats["bytes"],
            "sim_time_ms": result.elapsed * 1e3,
        }
    )


def test_adi_scaling_procs(benchmark):
    rows = {}
    for p in (2, 4, 8):
        r = run_adi(n=64, steps=2, nprocs=p)
        assert r.correct
        rows[p] = (r.stats["messages"], r.stats["bytes"])
    # transposes are all-to-all: messages grow ~P^2, per-proc data shrinks
    assert rows[8][0] > rows[4][0] > rows[2][0]
    benchmark(lambda: run_adi(n=64, steps=2, nprocs=8))
    benchmark.extra_info.update({f"p{p}": v for p, v in rows.items()})
