"""CI smoke assertion: the second compile of a workload is served from disk.

Run as a script (``python benchmarks/store_smoke.py [--dir PATH]``)
against a persistent store directory -- in CI, one restored by
``actions/cache`` keyed on the schema fingerprint.  Two store-backed
sessions compile the mixed four-app workload:

1. the first session compiles (or, when the CI cache carried entries
   from an earlier run, is itself served from disk -- both fine);
2. a second, *memory-cold* session over the same store must be served
   entirely from disk: ``store_hits > 0`` and zero pipeline passes.

Prints a JSON report (tiers, store hits, latencies, speedup) and exits
non-zero if the disk tier failed to serve, which fails the CI leg.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _store_workload import NPROCS, OPTIONS, mixed_workload

from repro import ArtifactStore, CompilerSession
from repro.store import default_store_dir


def _compile_all(session: CompilerSession, workload) -> tuple[list[str], float]:
    t0 = time.perf_counter()
    tiers = [
        session.compile_traced(w["source"], bindings=w["bindings"])[1]
        for w in workload
    ]
    return tiers, time.perf_counter() - t0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=None, help="store root directory")
    args = parser.parse_args(argv)
    root = args.dir or default_store_dir()

    workload = mixed_workload()
    store = ArtifactStore(root)
    first = CompilerSession(processors=NPROCS, options=OPTIONS, store=store)
    first_tiers, first_s = _compile_all(first, workload)
    second = CompilerSession(processors=NPROCS, options=OPTIONS, store=store)
    second_tiers, second_s = _compile_all(second, workload)

    report = {
        "store_dir": str(root),
        "fingerprint": store.fingerprint,
        "first_tiers": first_tiers,
        "second_tiers": second_tiers,
        "first_seconds": first_s,
        "second_seconds": second_s,
        "speedup_second_vs_first": (first_s / second_s) if second_s > 0 else 0.0,
        "store_hits": second.stats["store_hits"],
        "second_passes_run": second.stats["passes_run"],
        "entries": store.entry_count,
        "total_bytes": store.total_bytes,
    }
    print(json.dumps(report, indent=2, sort_keys=True))

    ok = (
        second.stats["store_hits"] > 0
        and second.stats["passes_run"] == 0
        and all(t == "disk" for t in second_tiers)
    )
    if not ok:
        print("store-smoke FAILED: second compile was not served from disk",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
