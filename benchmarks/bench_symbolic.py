"""Experiment SYMBOLIC: compile once, instantiate every (n, P).

The PR 7 trajectory claim: a shape-symbolic program is compiled to a
:class:`~repro.compiler.template.SymbolicTemplate` exactly once, and
every further ``(n, P)`` request is served by *instantiating* the
template -- only the cheap structural pipeline tail runs, and the
schedule plan table stays lazy behind a shared memo.

One program (the Fig. 16 loop kernel, extents symbolic in ``n``) is
requested at 32 distinct ``(n, P)`` pairs, two ways:

* **cold sweep** (fresh :class:`~repro.compiler.CompilerSession` per
  request, one shared :class:`~repro.store.ArtifactStore`): every request
  after the first must be answered from the store's single shape-erased
  template entry -- the *store hit rate* over the whole sweep is
  ``31/32`` and is asserted ``>= 0.9``;
* **warm sweep** (one session holding the template in memory): per-pair
  instantiation time vs a from-scratch concrete compile at the same
  ``(n, P)``.  Instantiation is asserted ``>= 20x`` cheaper.

Differential soundness rides along: for a sample of pairs the
instantiated artifact must execute bit-identically (values, bytes,
messages) to the from-scratch concrete compile.

Results are written machine-readably to ``BENCH_symbolic.json`` (or the
shared ``--json PATH`` flag) and gated by ``check_regression.py``.
``BENCH_SYMBOLIC_SIZES`` / ``BENCH_SYMBOLIC_PROCS`` reshape the sweep.
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro import (
    CompilerOptions,
    CompilerSession,
    ExecutionEnv,
    Executor,
    Machine,
    compile_program,
)
from repro.store import ArtifactStore

FIG16 = """
subroutine main(t)
  integer n, t
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute writes A
  do i = 1, t
!hpf$   redistribute A(cyclic)
    compute writes A reads A
!hpf$   redistribute A(block)
  enddo
  compute reads A
end
"""

SIZES = tuple(
    int(n)
    for n in os.environ.get("BENCH_SYMBOLIC_SIZES", "64,96,128,192,256,384,512,768").split(",")
)
PROCS = tuple(
    int(p) for p in os.environ.get("BENCH_SYMBOLIC_PROCS", "2,3,4,8").split(",")
)
POLICY = "round-robin"

#: the sweep: every (n, P) combination, first pair is the one cold compile
PAIRS = [(n, p) for n in SIZES for p in PROCS]


def _request(session: CompilerSession, n: int, p: int):
    return session.compile_traced(FIG16, bindings={"n": n, "t": 3}, processors=p)


def _execute(compiled, n: int):
    machine = Machine(compiled.processors)
    env = ExecutionEnv(bindings={"n": n, "t": 3}, inputs={"a": np.arange(float(n))})
    result = Executor(compiled, machine, env).run("main")
    return result.value("a"), machine.stats


def _cold_sweep(store_dir: str) -> dict:
    """Fresh session per request, shared store: cross-process first contact."""
    opts = CompilerOptions.symbolic(level=3, schedule=POLICY)
    store = ArtifactStore(store_dir)
    tiers = []
    seconds = 0.0
    for n, p in PAIRS:
        session = CompilerSession(store=store, options=opts)
        t0 = time.perf_counter()
        _, tier = _request(session, n, p)
        seconds += time.perf_counter() - t0
        tiers.append(tier)
    assert tiers[0] == "compiled" and all(t == "instantiated" for t in tiers[1:]), tiers
    stats = store.stats
    # shape-diverse traffic collapsed to ONE disk entry
    assert stats["entries_template"] == 1 and stats["entries_concrete"] == 0, stats
    hit_rate = stats["hits_template"] / len(PAIRS)
    return {
        "requests": len(PAIRS),
        "store_hit_rate": hit_rate,
        "shape_reuse_ratio": stats["shape_reuse_ratio"],
        "store_entries": stats["entries_template"],
        "mean_request_ms": seconds / len(PAIRS) * 1e3,
    }


def _warm_sweep() -> dict:
    """One session holding the template: per-pair instantiation vs compile."""
    opts = CompilerOptions.symbolic(level=3, schedule=POLICY)
    session = CompilerSession(options=opts)
    n0, p0 = PAIRS[0]
    t0 = time.perf_counter()
    _request(session, n0, p0)
    first_compile_s = time.perf_counter() - t0

    inst_s = 0.0
    for n, p in PAIRS[1:]:
        t0 = time.perf_counter()
        _, tier = _request(session, n, p)
        inst_s += time.perf_counter() - t0
        assert tier == "instantiated", (n, p, tier)

    concrete_s = 0.0
    for n, p in PAIRS[1:]:
        t0 = time.perf_counter()
        compile_program(
            FIG16,
            bindings={"n": n, "t": 3},
            processors=p,
            options=CompilerOptions(level=3, schedule=POLICY),
        )
        concrete_s += time.perf_counter() - t0

    served = len(PAIRS) - 1
    return {
        "first_compile_ms": first_compile_s * 1e3,
        "instantiate_ms_mean": inst_s / served * 1e3,
        "concrete_ms_mean": concrete_s / served * 1e3,
        "speedup": concrete_s / inst_s,
        "instantiations": session.stats["instantiations"],
    }


def test_symbolic_instantiation_vs_concrete(benchmark, bench_json):
    assert len(PAIRS) >= 32, "the sweep must cover at least 32 (n, P) pairs"
    assert len(set(PAIRS)) == len(PAIRS)

    # differential soundness sample: instantiated == from-scratch concrete
    opts = CompilerOptions.symbolic(level=3, schedule=POLICY)
    session = CompilerSession(options=opts)
    for n, p in (PAIRS[0], PAIRS[5], PAIRS[-1]):
        inst, _ = _request(session, n, p)
        ref = compile_program(
            FIG16,
            bindings={"n": n, "t": 3},
            processors=p,
            options=CompilerOptions(level=3, schedule=POLICY),
        )
        got_v, got_s = _execute(inst, n)
        ref_v, ref_s = _execute(ref, n)
        assert np.array_equal(got_v, ref_v), (n, p)
        assert (got_s.bytes, got_s.messages) == (ref_s.bytes, ref_s.messages), (n, p)

    with tempfile.TemporaryDirectory() as store_dir:
        cold = _cold_sweep(store_dir)
    warm = _warm_sweep()

    # the two headline claims
    assert cold["store_hit_rate"] >= 0.9, cold
    assert warm["speedup"] >= 20.0, warm

    path = bench_json(
        "BENCH_symbolic.json",
        {
            "experiment": "symbolic-templates",
            "program": "fig16",
            "policy": POLICY,
            "sizes": list(SIZES),
            "procs": list(PROCS),
            "pairs": len(PAIRS),
            "cold": cold,
            "warm": warm,
        },
    )

    # the timed kernel: one instantiation at a fresh (n, P)
    counter = iter(range(10_000))

    def _instantiate_once():
        n = 1024 + 4 * next(counter)  # always a shape the session never saw
        compiled, tier = _request(session, n, 4)
        assert tier == "instantiated"
        return compiled

    benchmark(_instantiate_once)
    benchmark.extra_info.update(
        {
            "json_path": path,
            "pairs": len(PAIRS),
            "store_hit_rate": round(cold["store_hit_rate"], 4),
            "speedup_vs_concrete": round(warm["speedup"], 1),
            "instantiate_ms_mean": round(warm["instantiate_ms_mean"], 3),
            "concrete_ms_mean": round(warm["concrete_ms_mean"], 3),
        }
    )
