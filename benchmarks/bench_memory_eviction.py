"""Experiment Q9 (paper Sec. 5.2): memory-pressure eviction of live copies.

"The runtime can decide to free a live copy if not enough memory is
available ... If required later on, the copy will be regenerated."  Under a
tight per-processor memory limit the run must still complete correctly,
paying regeneration copies an unconstrained machine avoids.
"""

from __future__ import annotations

import numpy as np

LOOP3 = """
subroutine main(m)
  integer n, m
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute writes A
  do i = 1, m
!hpf$   redistribute A(cyclic)
    compute reads A
!hpf$   redistribute A(cyclic(2))
    compute reads A
!hpf$   redistribute A(block)
    compute reads A
  enddo
end
"""

N, M = 64, 4
COPY_BYTES = (N // 4) * 8  # one copy per processor


def _inputs():
    return {"a": np.arange(float(N))}


def test_memory_eviction(benchmark, run_program):
    r_free, m_free, _ = run_program(
        LOOP3, level=2, bindings={"n": N, "m": M}, inputs=_inputs()
    )
    r_tight, m_tight, _ = run_program(
        LOOP3,
        level=2,
        bindings={"n": N, "m": M},
        inputs=_inputs(),
        memory_limit=2 * COPY_BYTES + COPY_BYTES // 2,
    )
    assert np.allclose(r_free.value("a"), r_tight.value("a"))
    assert m_free.stats.evictions == 0
    assert m_tight.stats.evictions > 0
    assert m_tight.stats.remaps_performed >= m_free.stats.remaps_performed
    assert m_tight.mem_peak() <= 2 * COPY_BYTES + COPY_BYTES // 2

    benchmark(
        lambda: run_program(
            LOOP3,
            level=2,
            bindings={"n": N, "m": M},
            inputs=_inputs(),
            memory_limit=2 * COPY_BYTES + COPY_BYTES // 2,
        )
    )
    benchmark.extra_info.update(
        {
            "evictions": m_tight.stats.evictions,
            "copies_unconstrained": m_free.stats.remaps_performed,
            "copies_tight_memory": m_tight.stats.remaps_performed,
            "mem_peak_tight": m_tight.mem_peak(),
        }
    )
