"""Ablation: what each optimization level buys (DESIGN.md's ablation bench).

One mixed workload exercising every optimization at once -- useless
remappings, an aligned family with partial use, argument remappings across
consecutive calls, a read-only loop, and a flow-dependent live copy -- run
at levels 0/1/2/3:

* level 1 adds useless-remapping removal + status checks (Appendix C);
* level 2 adds dynamic live copies (Appendix D);
* level 3 adds loop-invariant remapping motion (Fig. 16/17).
"""

from __future__ import annotations

import numpy as np

MIXED = """
subroutine stage(X)
  integer n
  real X(n)
  intent in X
!hpf$ distribute X(cyclic)
  compute "consume" reads X
end

subroutine main(t)
  integer n, t
  real A(n), B(n), U(n), V(n)
!hpf$ template T(n)
!hpf$ align with T :: U, V
!hpf$ dynamic A, B, U, V
!hpf$ distribute A(block)
!hpf$ distribute B(block)
!hpf$ distribute T(block)
  compute writes A, U reads B
! useless out-and-back (Fig. 2 pattern)
!hpf$ redistribute B(cyclic)
!hpf$ redistribute B(block)
  compute reads B
! aligned family, only U used after (Fig. 3 pattern)
!hpf$ redistribute T(cyclic)
  compute reads U
! consecutive calls (Fig. 4 pattern)
  call stage(A)
  call stage(A)
! read-only loop (Fig. 16 pattern)
  do i = 1, t
!hpf$   redistribute A(cyclic(2))
    compute reads A
!hpf$   redistribute A(block)
  enddo
! flow-dependent live copy (Fig. 13 pattern)
  if c then
!hpf$   redistribute B(cyclic(4))
    compute writes B
  else
!hpf$   redistribute B(cyclic(2))
    compute reads B
  endif
!hpf$ redistribute B(cyclic)
  compute reads A, B, U
end
"""

N, T = 1024, 6
KERNELS = {"consume": lambda ctx: ctx.value("x")}


def _inputs():
    return {k: np.arange(float(N)) for k in ("a", "b", "u", "v")}


def test_ablation_levels(benchmark, run_program):
    rows = {}
    values = {}
    for level in (0, 1, 2, 3):
        r, machine, _ = run_program(
            MIXED,
            sub="main",
            level=level,
            bindings={"n": N, "t": T},
            conditions={"c": False},
            inputs=_inputs(),
            kernels=KERNELS,
        )
        rows[level] = machine.stats.snapshot()
        values[level] = {a: r.value(a) for a in ("a", "b", "u", "v")}

    # semantics identical at every level
    for level in (1, 2, 3):
        for a in values[0]:
            assert np.array_equal(values[0][a], values[level][a])

    # each level buys something on this workload
    assert rows[1]["bytes"] < rows[0]["bytes"]  # removal
    assert rows[2]["bytes"] < rows[1]["bytes"]  # live copies
    assert rows[3]["remaps_performed"] <= rows[2]["remaps_performed"]
    assert rows[3]["bytes"] <= rows[2]["bytes"]
    assert rows[3]["bytes"] < rows[0]["bytes"] / 2  # overall at least 2x

    benchmark(
        lambda: run_program(
            MIXED,
            sub="main",
            level=3,
            bindings={"n": N, "t": T},
            conditions={"c": False},
            inputs=_inputs(),
            kernels=KERNELS,
        )
    )
    benchmark.extra_info.update(
        {
            f"level{lvl}": {
                "remaps": s["remaps_performed"],
                "skipped": s["remaps_skipped_live"] + s["remaps_skipped_status"],
                "bytes": s["bytes"],
            }
            for lvl, s in rows.items()
        }
    )
