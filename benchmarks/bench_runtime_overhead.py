"""Experiment Q7 (paper Sec. 4.3): the status check is 'inexpensive'.

The claim behind loop-invariant motion is that skipping a remapping via
the runtime status test costs almost nothing compared to the copy it
avoids.  We measure both sides: a status-skipped remapping vs a performed
one, in simulated machine time and in host time.
"""

from __future__ import annotations

import numpy as np

SKIP = """
subroutine main(t)
  integer n, t
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute writes A
  do i = 1, t
!hpf$   redistribute A(block)
    compute reads A
  enddo
end
"""

COPY = """
subroutine main(t)
  integer n, t
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute writes A
  do i = 1, t
!hpf$   redistribute A(cyclic)
    compute reads A
!hpf$   redistribute A(block)
    compute reads A
  enddo
end
"""

N, T = 4096, 16


def _inputs():
    return {"a": np.ones(N)}


def test_status_check_vs_copy(benchmark, run_program):
    # NOTE: a redistribute to the array's current mapping is already dropped
    # statically; to measure the *runtime* status path we use level 1 on a
    # program whose remap target alternates, then count skipped ones
    _, m_skip, _ = run_program(
        COPY, level=2, bindings={"n": N, "t": T}, inputs=_inputs()
    )
    _, m_copy, _ = run_program(
        COPY, level=0, bindings={"n": N, "t": T}, inputs=_inputs()
    )
    # level 2 reuses live copies: after iteration 1, all remaps are skipped
    skipped = m_skip.stats.remaps_skipped_live + m_skip.stats.remaps_skipped_status
    assert skipped >= 2 * T - 2
    assert m_copy.stats.remaps_performed == 2 * T
    # simulated time: skips must be drastically cheaper
    assert m_skip.elapsed < m_copy.elapsed / 5

    benchmark(
        lambda: run_program(COPY, level=2, bindings={"n": N, "t": T}, inputs=_inputs())
    )
    benchmark.extra_info.update(
        {
            "skipped_remaps": skipped,
            "performed_naive": m_copy.stats.remaps_performed,
            "sim_time_skip_ms": m_skip.elapsed * 1e3,
            "sim_time_copy_ms": m_copy.elapsed * 1e3,
            "speedup": m_copy.elapsed / m_skip.elapsed,
        }
    )
