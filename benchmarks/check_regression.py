"""Perf-regression gate: fresh benchmark output vs committed baselines.

CI's ``bench-smoke`` leg runs the schedule, service, symbolic and
mp-transport benchmarks, then invokes this script to compare the freshly
produced ``BENCH_schedule.json`` / ``BENCH_service.json`` /
``BENCH_symbolic.json`` / ``BENCH_mp.json`` against the committed
baselines in ``benchmarks/baselines/``.  The perf trajectory is thereby
*gated*, not merely uploaded.  When ``$GITHUB_STEP_SUMMARY`` is set the
verdict is additionally appended there as markdown, so the run's summary
page shows what was gated and what regressed.

Tolerances are deliberately generous -- runners differ in cores, clock
and load -- so only regressions that cannot be machine noise fail:

* **makespan-ordering violations** (exact, model-derived): round-robin
  must never exceed the naive makespan, aggregation must never increase
  the message count and never change the bytes, on every benchmarked
  case in the fresh output;
* **modelled metrics drifting past the slowdown bound** (default 2x):
  per-case makespans and message counts are deterministic functions of
  the schedule subsystem, so fresh > 2x baseline means the *code*, not
  the machine, got slower;
* **throughput loss past the bound**: warm requests-per-second per
  worker count below half the committed baseline.  The warm sweep is
  I/O-modelled (the sleep dominates), which keeps it comparable across
  machines;
* **symbolic-template floors**: the shape-diverse sweep must keep its
  >= 0.9 store hit rate, collapse to one shape-erased entry, and keep
  instantiation >= 20x cheaper than a concrete compile;
* **instrumentation price ceilings**: the warm service batch priced with
  metric publication on must stay within 1% of the metrics-disabled
  floor, and within 5% with tracing enabled;
* **mp-transport discipline**: round-robin's *measured* one-port-clock
  makespan must not exceed naive's, the transport's deterministic
  traffic accounting must match the baseline exactly, and the
  measured-vs-predicted calibration ratio must stay within a wide band
  of the committed one.

Every fresh BENCH json must additionally embed a well-formed registry
snapshot under ``"obs"`` (schema-versioned, histograms internally
consistent); a missing or malformed snapshot is an infrastructure
failure (exit 2), because it means the benchmarks and the gate no
longer speak one schema.

Only worker counts / cases present in *both* files are compared, so CI's
smaller smoke sweeps gate against the full committed baselines.  Exit
codes: 0 clean, 1 regression(s) found, 2 missing/unreadable inputs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: makespans are floats computed by one formula on both sides; the
#: epsilon only forgives float-sum ordering jitter, not real contention
EPS = 1e-9

#: registry snapshot schema every fresh BENCH json must embed under
#: "obs" (kept in sync with repro.obs.metrics.SCHEMA_VERSION by
#: tests/test_perf_gate.py)
OBS_SCHEMA = 1

#: instrumentation price ceilings on the warm service batch: metric
#: publication alone must stay under 1%, full tracing under 5%
MAX_METRICS_OVERHEAD = 0.01
MAX_TRACING_OVERHEAD = 0.05

#: fused loop replay must keep this steady-state speedup over plain
#: execution on the 16-trip benchmark workload (measured well above it;
#: the floor only catches the fast path silently disabling itself)
MIN_FUSED_REPLAY_SPEEDUP = 1.5


def check_obs_snapshot(fresh: dict, name: str) -> list[str]:
    """Validate the registry snapshot a fresh BENCH json must embed.

    Infrastructure-grade checks (the caller exits 2 on any finding): the
    ``obs`` block must exist, carry the expected schema version, and
    every histogram must be internally consistent -- ``count`` equal to
    the sum of its bucket counts (a torn histogram means the snapshot
    raced a writer, which the locking is supposed to prevent).
    """
    obs = fresh.get("obs")
    if not isinstance(obs, dict):
        return [f"{name}: missing embedded registry snapshot ('obs' key)"]
    if obs.get("schema") != OBS_SCHEMA:
        return [
            f"{name}: obs snapshot schema {obs.get('schema')!r} != "
            f"expected {OBS_SCHEMA}"
        ]
    problems = []
    metrics = obs.get("metrics")
    if not isinstance(metrics, list):
        return [f"{name}: obs snapshot has no metrics list"]
    for m in metrics:
        if not isinstance(m, dict) or "name" not in m or "kind" not in m:
            problems.append(f"{name}: malformed obs metric entry {m!r}")
            continue
        if m["kind"] == "histogram" and m["count"] != sum(m["counts"]):
            problems.append(
                f"{name}: torn histogram {m['name']} -- count {m['count']} "
                f"!= bucket sum {sum(m['counts'])}"
            )
    return problems


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except OSError as exc:
        print(f"perf-gate: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc
    except ValueError as exc:
        print(f"perf-gate: {path} is not valid JSON: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc


def check_schedule(
    fresh: dict, baseline: dict, max_slowdown: float
) -> tuple[list[str], int]:
    """Problems found plus how many cases were actually compared.

    Zero comparisons means the gate checked nothing -- the caller must
    treat that as an infrastructure failure (schema drift, disjoint case
    sets), not as a pass: a silently disabled gate is exactly the
    failure mode this script exists to prevent.
    """
    problems: list[str] = []
    compared = 0
    fresh_results = fresh.get("results", {})
    base_results = baseline.get("results", {})
    for case, r in sorted(fresh_results.items()):
        rr, naive, agg = r["round-robin"], r["naive"], r["aggregate"]
        if rr["makespan_us"] > naive["makespan_us"] + EPS:
            problems.append(
                f"schedule[{case}]: makespan-ordering violation -- round-robin "
                f"{rr['makespan_us']:.3f}us > naive {naive['makespan_us']:.3f}us"
            )
        if agg["messages"] > rr["messages"]:
            problems.append(
                f"schedule[{case}]: aggregation increased messages "
                f"({agg['messages']} > {rr['messages']})"
            )
        if agg["bytes"] != rr["bytes"]:
            problems.append(
                f"schedule[{case}]: aggregation changed bytes "
                f"({agg['bytes']} != {rr['bytes']})"
            )
    fp = fresh.get("verified_fast_path")
    if fp is not None:
        # deterministic invariant: statically-verified plans must move the
        # exact same traffic; and the skipped runtime validation must not
        # somehow make warm replay slower beyond clear machine noise
        if float(fp["speedup"]) < 0.8:
            problems.append(
                f"schedule[verified-fast-path]: certified plan replay is "
                f"{1 / float(fp['speedup']):.2f}x SLOWER than unverified "
                f"({fp['verified_us']:.0f}us vs {fp['unverified_us']:.0f}us)"
            )
        base_fp = baseline.get("verified_fast_path")
        if base_fp is not None and base_fp.get("pattern") != fp.get("pattern"):
            base_fp = None  # smoke sweep at another machine size: incomparable
        if base_fp is not None and (
            fp["bytes"] != base_fp["bytes"] or fp["messages"] != base_fp["messages"]
        ):
            problems.append(
                "schedule[verified-fast-path]: traffic drifted from baseline "
                f"(bytes {fp['bytes']} vs {base_fp['bytes']}, messages "
                f"{fp['messages']} vs {base_fp['messages']})"
            )
    fr = fresh.get("fused_replay")
    if fr is not None:
        # absolute floor (the benchmark's headline claim, re-checked here
        # so a weakened assertion cannot slip through): fused loop replay
        # must keep a clear steady-state win over plain execution
        if float(fr["speedup"]) < MIN_FUSED_REPLAY_SPEEDUP:
            problems.append(
                f"schedule[fused-replay]: steady-state speedup "
                f"{float(fr['speedup']):.2f}x fell below the "
                f"{MIN_FUSED_REPLAY_SPEEDUP:g}x floor "
                f"({fr['fused_us']:.0f}us fused vs {fr['unfused_us']:.0f}us)"
            )
        base_fr = baseline.get("fused_replay")
        if base_fr is not None and (
            base_fr.get("pattern") != fr.get("pattern")
            or base_fr.get("trips") != fr.get("trips")
        ):
            base_fr = None  # different workload shape: incomparable
        if base_fr is not None and (
            fr["bytes"] != base_fr["bytes"]
            or fr["messages"] != base_fr["messages"]
            or fr["replays"] != base_fr["replays"]
        ):
            problems.append(
                "schedule[fused-replay]: traffic or replay accounting drifted "
                f"from baseline (bytes {fr['bytes']} vs {base_fr['bytes']}, "
                f"messages {fr['messages']} vs {base_fr['messages']}, "
                f"replays {fr['replays']} vs {base_fr['replays']})"
            )
    for case in sorted(set(fresh_results) & set(base_results)):
        compared += 1
        for policy in ("naive", "round-robin", "aggregate"):
            f, b = fresh_results[case][policy], base_results[case][policy]
            if b["makespan_us"] > 0 and f["makespan_us"] > max_slowdown * b["makespan_us"]:
                problems.append(
                    f"schedule[{case}][{policy}]: makespan regressed "
                    f"{f['makespan_us']:.3f}us vs baseline {b['makespan_us']:.3f}us "
                    f"(> {max_slowdown:g}x)"
                )
            if b["messages"] > 0 and f["messages"] > max_slowdown * b["messages"]:
                problems.append(
                    f"schedule[{case}][{policy}]: message count regressed "
                    f"{f['messages']} vs baseline {b['messages']} (> {max_slowdown:g}x)"
                )
    return problems, compared


def check_service(
    fresh: dict, baseline: dict, max_slowdown: float
) -> tuple[list[str], int]:
    """Problems found plus how many worker counts were compared (see
    :func:`check_schedule` on why zero comparisons must not pass)."""
    problems: list[str] = []
    compared = 0
    fresh_results = fresh.get("results", {})
    base_results = baseline.get("results", {})
    for workers in sorted(set(fresh_results) & set(base_results), key=int):
        compared += 1
        f_rps = float(fresh_results[workers]["warm_rps"])
        b_rps = float(base_results[workers]["warm_rps"])
        if b_rps > 0 and f_rps < b_rps / max_slowdown:
            problems.append(
                f"service[workers={workers}]: warm throughput lost more than "
                f"{max_slowdown:g}x -- {f_rps:.1f} rps vs baseline {b_rps:.1f} rps"
            )
    speedup = fresh.get("warm_speedup_4_vs_1")
    if speedup is not None and speedup < 2.0:
        problems.append(
            f"service: warm 4-worker speedup {speedup:.2f}x fell below the "
            "asserted 2x floor"
        )
    overhead = fresh.get("overhead")
    if overhead is not None:
        compared += 1
        mo = float(overhead["metrics_overhead"])
        to = float(overhead["tracing_overhead"])
        if mo > MAX_METRICS_OVERHEAD:
            problems.append(
                f"service[overhead]: metric publication costs {mo:.2%} of the "
                f"warm batch (ceiling: {MAX_METRICS_OVERHEAD:.0%})"
            )
        if to > MAX_TRACING_OVERHEAD:
            problems.append(
                f"service[overhead]: tracing costs {to:.2%} of the warm batch "
                f"(ceiling: {MAX_TRACING_OVERHEAD:.0%})"
            )
    return problems, compared


def check_symbolic(
    fresh: dict, baseline: dict, max_slowdown: float
) -> tuple[list[str], int]:
    """Gate the symbolic-template trajectory (see :func:`check_schedule`
    on why zero comparisons must not pass).

    Two absolute floors (the benchmark's headline claims, re-checked here
    so a weakened assertion cannot slip through) plus a relative bound on
    the instantiation latency vs the committed baseline.
    """
    problems: list[str] = []
    compared = 0
    cold, warm = fresh["cold"], fresh["warm"]
    compared += 1
    if float(cold["store_hit_rate"]) < 0.9:
        problems.append(
            f"symbolic: store hit rate {float(cold['store_hit_rate']):.3f} fell "
            "below the asserted 0.9 floor"
        )
    if int(cold["store_entries"]) != 1:
        problems.append(
            f"symbolic: shape-diverse sweep left {cold['store_entries']} store "
            "entries (shape-erased keying must collapse them to 1)"
        )
    if float(warm["speedup"]) < 20.0:
        problems.append(
            f"symbolic: instantiation only {float(warm['speedup']):.1f}x cheaper "
            "than concrete compile (asserted floor: 20x)"
        )
    base_warm = baseline.get("warm")
    if base_warm is not None and fresh.get("pairs") == baseline.get("pairs"):
        compared += 1
        f_ms = float(warm["instantiate_ms_mean"])
        b_ms = float(base_warm["instantiate_ms_mean"])
        if b_ms > 0 and f_ms > max_slowdown * b_ms:
            problems.append(
                f"symbolic: per-pair instantiation regressed {f_ms:.2f}ms vs "
                f"baseline {b_ms:.2f}ms (> {max_slowdown:g}x)"
            )
    return problems, compared


def check_mp(
    fresh: dict, baseline: dict, max_slowdown: float
) -> tuple[list[str], int]:
    """Gate the mp transport's measured trajectory (see
    :func:`check_schedule` on why zero comparisons must not pass).

    Deterministic fields (per-policy messages/bytes/phases) must match
    the baseline exactly when the experiment shape matches -- the
    transport moving different traffic than it used to is a correctness
    drift, not noise.  The measured fields get two kinds of bound: the
    recorded makespan ordering (round-robin <= naive on the one-port
    clock) is exact, while the calibration ratio -- measured time over
    the cost model's prediction, a property of the host's pipes as much
    as of the code -- is only gated within a deliberately wide
    ``10 * max_slowdown`` band, enough to catch an accidental sync/sleep
    in the transport without flaking on slower runners.
    """
    problems: list[str] = []
    compared = 0
    results = fresh["results"]
    rr, naive, agg = results["round-robin"], results["naive"], results["aggregate"]
    compared += 1
    if rr["port_us"] > naive["port_us"] + EPS:
        problems.append(
            f"mp: measured makespan-ordering violation -- round-robin "
            f"{rr['port_us']:.0f}us > naive {naive['port_us']:.0f}us on the "
            "one-port clock"
        )
    if agg["messages"] > rr["messages"]:
        problems.append(
            f"mp: aggregation increased real messages "
            f"({agg['messages']} > {rr['messages']})"
        )
    if agg["bytes"] != rr["bytes"]:
        problems.append(
            f"mp: aggregation changed moved bytes ({agg['bytes']} != {rr['bytes']})"
        )
    for policy, r in results.items():
        c = float(r["calibration"])
        if not (c > 0):
            problems.append(f"mp[{policy}]: calibration ratio {c!r} is not positive")

    same_shape = all(
        fresh.get(k) == baseline.get(k) for k in ("nprocs", "n", "trips")
    )
    if same_shape:
        cal_bound = 10.0 * max_slowdown
        for policy in ("naive", "round-robin", "aggregate"):
            f, b = results[policy], baseline["results"][policy]
            compared += 1
            for key in ("messages", "bytes", "phases"):
                if f[key] != b[key]:
                    problems.append(
                        f"mp[{policy}]: deterministic {key} drifted from "
                        f"baseline ({f[key]} != {b[key]})"
                    )
            fc, bc = float(f["calibration"]), float(b["calibration"])
            if bc > 0 and fc > cal_bound * bc:
                problems.append(
                    f"mp[{policy}]: calibration ratio regressed {fc:.2f} vs "
                    f"baseline {bc:.2f} (> {cal_bound:g}x band)"
                )
    return problems, compared


def write_step_summary(lines: list[str], path: str | None = None) -> bool:
    """Append a markdown report to ``$GITHUB_STEP_SUMMARY`` when set.

    CI surfaces the gate's verdict on the run's summary page instead of
    burying it in the log.  Returns whether anything was written; a
    missing/unset variable is a silent no-op (local runs).
    """
    target = path if path is not None else os.environ.get("GITHUB_STEP_SUMMARY")
    if not target:
        return False
    try:
        with open(target, "a", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
    except OSError as exc:
        print(f"perf-gate: cannot write step summary: {exc}", file=sys.stderr)
        return False
    return True


def _summary_lines(
    status: str, problems: list[str], compared: dict[str, int]
) -> list[str]:
    lines = ["## Perf gate", "", f"**{status}**", ""]
    if compared:
        lines += ["| benchmark | cases compared |", "| --- | --- |"]
        lines += [f"| `{name}` | {n} |" for name, n in sorted(compared.items())]
        lines.append("")
    if problems:
        lines.append(f"{len(problems)} problem(s):")
        lines.append("")
        lines += [f"- {p}" for p in problems]
        lines.append("")
    return lines


def main(argv: list[str] | None = None) -> int:
    here = Path(__file__).resolve().parent
    parser = argparse.ArgumentParser(description="gate fresh BENCH json vs baselines")
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=Path("."),
        help="directory holding the freshly produced BENCH_*.json (default: .)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=here / "baselines",
        help="directory holding the committed baselines",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=2.0,
        help="fail when a gated metric regresses past this factor (default: 2)",
    )
    args = parser.parse_args(argv)

    problems: list[str] = []
    compared_by_file: dict[str, int] = {}
    for name, check in (
        ("BENCH_schedule.json", check_schedule),
        ("BENCH_service.json", check_service),
        ("BENCH_symbolic.json", check_symbolic),
        ("BENCH_mp.json", check_mp),
    ):
        fresh_path = args.fresh_dir / name
        base_path = args.baseline_dir / name
        try:
            fresh = _load(fresh_path)
            baseline = _load(base_path)
        except SystemExit:
            write_step_summary(
                _summary_lines(
                    ":warning: infrastructure failure (exit 2)",
                    [f"{name}: missing or unreadable (fresh or baseline)"],
                    compared_by_file,
                )
            )
            raise
        infra = check_obs_snapshot(fresh, name)
        if name == "BENCH_service.json" and "overhead" not in fresh:
            infra.append(f"{name}: missing the instrumentation 'overhead' block")
        if not infra:
            try:
                found, compared = check(fresh, baseline, args.max_slowdown)
            except (KeyError, TypeError, ValueError) as exc:
                # a renamed/missing policy or metric key is schema drift --
                # an infrastructure failure (2), not a perf regression (1)
                infra.append(
                    f"{name} does not match the expected benchmark schema "
                    f"({type(exc).__name__}: {exc})"
                )
            else:
                if compared == 0:
                    infra.append(
                        f"{name} has no cases in common with its baseline "
                        "(schema drift or disjoint sweeps?) -- the gate "
                        "checked nothing"
                    )
        if infra:
            for p in infra:
                print(f"perf-gate: {p} -- refusing to gate", file=sys.stderr)
            write_step_summary(
                _summary_lines(
                    ":warning: infrastructure failure (exit 2)",
                    infra,
                    compared_by_file,
                )
            )
            return 2
        problems += found
        compared_by_file[name] = compared

    total_compared = sum(compared_by_file.values())
    if problems:
        print(f"perf-gate: {len(problems)} regression(s) found:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        write_step_summary(
            _summary_lines(
                f":x: {len(problems)} regression(s) found (exit 1)",
                problems,
                compared_by_file,
            )
        )
        return 1
    print(f"perf-gate: OK ({total_compared} cases within tolerances)")
    write_step_summary(
        _summary_lines(
            f":white_check_mark: OK -- {total_compared} cases within tolerances",
            [],
            compared_by_file,
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
