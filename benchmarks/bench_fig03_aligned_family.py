"""Experiment F3 (paper Fig. 3): aligned family, partial use.

Five arrays aligned to one template; its redistribution remaps all five,
but only A and D are used afterwards.  Optimized traffic must be exactly
2/5 of naive.
"""

from __future__ import annotations

import numpy as np

FIG3 = """
subroutine main()
  integer n
  real A(n), B(n), C(n), D(n), E(n)
!hpf$ template T(n)
!hpf$ align with T :: A, B, C, D, E
!hpf$ dynamic A, B, C, D, E
!hpf$ distribute T(block)
  compute reads A, B, C, D, E
!hpf$ redistribute T(cyclic)
  compute reads A, D
end
"""

N = 4096


def _inputs():
    return {k: np.arange(float(N)) for k in "abcde"}


def test_fig3_aligned_family(benchmark, run_program, traffic):
    t = traffic(FIG3, bindings={"n": N}, inputs=_inputs())
    naive, opt = t[0], t[3]

    assert naive["remaps_performed"] == 5
    assert opt["remaps_performed"] == 2  # A and D only
    assert opt["bytes"] * 5 == naive["bytes"] * 2  # exactly the 2/5 ratio

    benchmark(lambda: run_program(FIG3, level=3, bindings={"n": N}, inputs=_inputs()))
    benchmark.extra_info.update(
        {
            "naive_remaps": naive["remaps_performed"],
            "optimized_remaps": opt["remaps_performed"],
            "bytes_ratio": opt["bytes"] / naive["bytes"],
        }
    )
