"""Experiment Q6 (paper Appendix C/D): optimization complexity.

Useless-remapping removal is bounded at O(m^2 * p * q * r) with m graph
vertices, p arrays, q mappings per array and r predecessors, "expected to
be very small".  We measure removal + live-copy analysis time as the graph
grows.
"""

from __future__ import annotations

import pytest

from repro.apps.workloads import branchy_subroutine, chain_subroutine
from repro.ir.cfg import build_cfg
from repro.lang import resolve_program
from repro.mapping import ProcessorArrangement
from repro.remap import build_remapping_graph, compute_live_copies, remove_useless_remappings

P4 = ProcessorArrangement("P", (4,))


def _graph(program):
    resolved = resolve_program(program, bindings={}, default_processors=P4)
    sub = next(iter(resolved.subroutines.values()))
    return build_remapping_graph(build_cfg(sub), resolved)


@pytest.mark.parametrize("m", [8, 32, 128])
def test_optimize_scaling_chain(benchmark, m):
    program = chain_subroutine(m=m, p=2)

    def optimize():
        res = _graph(program)
        report = remove_useless_remappings(res.graph)
        compute_live_copies(res.graph)
        return report

    report = benchmark(optimize)
    benchmark.extra_info.update(
        {"remap_statements": m, "removed": report.removed_count}
    )


@pytest.mark.parametrize("m", [4, 16, 64])
def test_optimize_scaling_branchy(benchmark, m):
    program = branchy_subroutine(m=m, p=2)

    def optimize():
        res = _graph(program)
        report = remove_useless_remappings(res.graph)
        compute_live_copies(res.graph)
        return report

    report = benchmark(optimize)
    benchmark.extra_info.update({"branches": m, "removed": report.removed_count})
