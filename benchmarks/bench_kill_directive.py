"""Experiment Q10 (paper Sec. 4.3): the kill directive.

"Array kill analysis tells whether the values of an array are dead at a
given point ... used to avoid remapping communication of values that will
never be reused."

The directive matters exactly when the static effects cannot prove the
deadness: here the statement after the remapping only *partially* writes A
(proper effect W, so the compiler must conservatively ship the old values),
but the user knows the write covers everything later read.  Note that a
full redefinition (``defines``) needs no directive at all -- the effect
summarization already computes U = D and elides the copy (checked below).
"""

from __future__ import annotations

import numpy as np

KILL = """
subroutine main()
  integer n
  real A(n, n)
!hpf$ dynamic A
!hpf$ distribute A(block, *)
  compute reads A
!hpf$ kill A
!hpf$ redistribute A(*, block)
  compute "overwrite" writes A
  compute reads A
end
"""

NOKILL = KILL.replace("!hpf$ kill A\n", "")

DEFINES = """
subroutine main()
  integer n
  real A(n, n)
!hpf$ dynamic A
!hpf$ distribute A(block, *)
  compute reads A
!hpf$ redistribute A(*, block)
  compute defines A
  compute reads A
end
"""

N = 64
KERNELS = {
    # overwrites every element without reading the old values: the user's
    # justification for the kill assertion
    "overwrite": lambda ctx: ctx.set_value("a", np.full((N, N), 2.5)),
}


def _inputs():
    return {"a": np.arange(N * N, dtype=float).reshape(N, N)}


def test_kill_directive(benchmark, run_program):
    r_plain, m_plain, _ = run_program(
        NOKILL, level=3, bindings={"n": N}, inputs=_inputs(), kernels=KERNELS
    )
    r_kill, m_kill, _ = run_program(
        KILL, level=3, bindings={"n": N}, inputs=_inputs(), kernels=KERNELS
    )

    # without kill, the W effect forces the transpose to ship old values
    assert m_plain.stats.bytes > 0
    # with kill, the remapping allocates without communication
    assert m_kill.stats.bytes == 0
    assert m_kill.stats.remaps_dead_copy == 1
    # and the observable results agree (the overwrite covers everything)
    assert np.array_equal(r_plain.value("a"), r_kill.value("a"))

    benchmark(
        lambda: run_program(
            KILL, level=3, bindings={"n": N}, inputs=_inputs(), kernels=KERNELS
        )
    )
    benchmark.extra_info.update(
        {
            "bytes_without_kill": m_plain.stats.bytes,
            "bytes_with_kill": m_kill.stats.bytes,
        }
    )


def test_full_redefinition_needs_no_kill(benchmark, run_program):
    """U = D is derived statically for 'defines': zero bytes without kill."""
    _, m, _ = run_program(DEFINES, level=3, bindings={"n": N}, inputs=_inputs())
    assert m.stats.bytes == 0
    assert m.stats.remaps_dead_copy == 1
    benchmark(
        lambda: run_program(DEFINES, level=3, bindings={"n": N}, inputs=_inputs())
    )
    benchmark.extra_info["bytes"] = m.stats.bytes
