"""Experiment STORE: cross-process warm start from the persistent store.

The claim under test is the paper's premise made operational: remapping
artifacts are expensive to derive and cheap to replay, so a *fresh
process* (a restarted service, a new CI runner) with a populated
:class:`~repro.store.ArtifactStore` must reach its first result far
faster than one that cold-compiles.  Three real subprocesses (no
in-memory cache can possibly leak across) run the mixed adi/fft2d/lu/sar
workload (``_store_workload.py``) through ``_store_worker.py``:

* ``populate`` compiles everything through a store-backed session;
* ``warm`` measures per-app artifact-acquisition latency in a fresh
  process served entirely from disk (tier asserted ``"disk"``);
* ``cold`` measures the same latencies with no store (full pipeline).

Shape asserted:

* warm first-result latency is >= 5x faster than cold compile (measured
  ~10x: verified unpickle vs level-3 + schedule + traffic-estimate
  pipeline);
* results are bit-identical across all three processes (value digests)
  and match an in-process reference execution;
* the warm process did zero pipeline work (``passes_run == 0``,
  ``store_hits`` == workload size).

Results are written machine-readably to ``BENCH_store.json`` (or the
shared ``--json PATH`` flag); CI uploads the file as an artifact.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from _store_workload import NPROCS, OPTIONS, mixed_workload, run_and_digest

from repro import ArtifactStore, CompilerSession

REPO = Path(__file__).resolve().parent.parent
WORKER = Path(__file__).resolve().parent / "_store_worker.py"

MIN_SPEEDUP = 5.0


def _run_worker(mode: str, store_dir: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src")] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, str(WORKER), mode, str(store_dir)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert proc.returncode == 0, f"{mode} worker failed:\n{proc.stderr}"
    return json.loads(proc.stdout)


def test_cross_process_warm_start(benchmark, bench_json, tmp_path):
    store_dir = tmp_path / "store"
    populate = _run_worker("populate", store_dir)
    assert populate["tiers"] == ["compiled"] * 4
    assert populate["store_writes"] == 4

    warm = _run_worker("warm", store_dir)
    cold = _run_worker("cold", store_dir)

    # the warm process never ran a pipeline: all four artifacts from disk
    assert warm["store_hits"] == 4
    assert warm["passes_run"] == 0

    # bit-identical results in every process, and vs this process
    assert populate["digests"] == warm["digests"] == cold["digests"]
    reference_session = CompilerSession(processors=NPROCS, options=OPTIONS)
    for w in mixed_workload():
        assert run_and_digest(reference_session, w) == populate["digests"][w["app"]], (
            f"{w['app']} diverged from in-process reference"
        )

    # the headline claim: first-result latency >= 5x faster from disk
    first_speedup = cold["first_ms"] / warm["first_ms"]
    total_speedup = cold["total_ms"] / warm["total_ms"]
    assert first_speedup >= MIN_SPEEDUP, (
        f"warm start only {first_speedup:.1f}x faster to first result "
        f"({warm['first_ms']:.2f} ms vs {cold['first_ms']:.2f} ms cold)"
    )

    store = ArtifactStore(store_dir)
    path = bench_json(
        "BENCH_store.json",
        {
            "experiment": "store-warm-start",
            "apps": [w["app"] for w in mixed_workload()],
            "processors": NPROCS,
            "passes": list(OPTIONS.pass_names),
            "min_speedup_asserted": MIN_SPEEDUP,
            "first_latency_speedup": first_speedup,
            "total_latency_speedup": total_speedup,
            "warm": {k: warm[k] for k in ("first_ms", "total_ms", "per_app_ms")},
            "cold": {k: cold[k] for k in ("first_ms", "total_ms", "per_app_ms")},
            "store": {
                "entries": store.entry_count,
                "total_bytes": store.total_bytes,
                "fingerprint": store.fingerprint,
            },
        },
    )

    # the timed kernel: one verified disk load of the costliest artifact
    lu = mixed_workload()[0]
    session = CompilerSession(processors=NPROCS, options=OPTIONS, store=store)
    key = session.cache_key(lu["source"], bindings=lu["bindings"])
    assert store.load(key) is not None
    benchmark(lambda: store.load(key))

    benchmark.extra_info.update(
        {
            "json_path": path,
            "first_latency_speedup": round(first_speedup, 2),
            "total_latency_speedup": round(total_speedup, 2),
            "warm_first_ms": round(warm["first_ms"], 3),
            "cold_first_ms": round(cold["first_ms"], 3),
            "store_bytes": store.total_bytes,
        }
    )
