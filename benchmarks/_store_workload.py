"""The mixed four-app workload shared by the store benchmark tooling.

One place defines the adi/fft2d/lu/sar request mix (the paper's Sec. 1
application classes) so the cross-process benchmark driver
(``bench_store.py``), its subprocess worker (``_store_worker.py``) and
the CI smoke assertion (``store_smoke.py``) all measure *exactly* the
same artifacts -- same sources, bindings, options and inputs, hence the
same session cache keys and store entries.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro import CompilerOptions
from repro.apps.adi import adi_kernels, build_adi_program
from repro.apps.fft2d import build_fft2d_program, fft2d_kernels
from repro.apps.lu import build_lu_program, lu_kernels
from repro.apps.sar import (
    build_sar_program,
    chirp,
    sar_kernels,
    synthesize_raw,
    synthetic_scene,
)

NPROCS = 4
#: Problem size.  40 keeps the whole benchmark under a second while the
#: biggest artifact (lu: one subroutine per elimination step) is genuinely
#: expensive to derive -- the regime the warm-start claim is about.
N = 40

#: The compile configuration under benchmark: the full analysis pipeline
#: a serving deployment runs -- level-3 optimization, the schedule pass
#: (artifacts carry precompiled plan tables) and the traffic-estimate
#: pass (per-subroutine best/worst traffic predictions over the scenario
#: grid).  This is exactly the paper's premise at its sharpest: the
#: derivation is expensive (scenario enumeration, plan building, cost
#: guard), the replay is a verified unpickle.
OPTIONS = CompilerOptions(
    passes=(
        "parse",
        "motion",
        "resolve",
        "construction",
        "remove-useless",
        "live-copies",
        "status-checks",
        "codegen",
        "schedule",
        "traffic-estimate",
    ),
    schedule="round-robin",
)


def mixed_workload() -> list[dict]:
    """The four apps as (source, bindings, kernels, inputs, ...) requests."""
    rng = np.random.default_rng(0)
    u0 = rng.normal(size=(N, N))
    x0 = rng.normal(size=(N, N))
    lu_prog, steps = build_lu_program(N, block=8)
    a0 = rng.normal(size=(N, N)) + N * np.eye(N)
    range_ref, azimuth_ref = chirp(N, rate=7.0), chirp(N, rate=3.0)
    raw = synthesize_raw(synthetic_scene(N, seed=0), range_ref, azimuth_ref)
    # lu first: the costliest derivation leads, so "first-result latency"
    # is measured where a restarted service hurts most
    return [
        dict(
            app="lu",
            source=lu_prog,
            bindings={"steps": steps},
            kernels=lu_kernels(N, block=8),
            inputs={"a": a0},
            dtype=np.float64,
            array="a",
        ),
        dict(
            app="adi",
            source=build_adi_program(N),
            bindings={"t": 2},
            kernels=adi_kernels(alpha=0.1),
            inputs={"u": u0},
            dtype=np.float64,
            array="u",
        ),
        dict(
            app="fft2d",
            source=build_fft2d_program(N),
            bindings={},
            kernels=fft2d_kernels(),
            inputs={"x": x0},
            dtype=np.complex128,
            array="x",
        ),
        dict(
            app="sar",
            source=build_sar_program(N),
            bindings={"looks": 1},
            kernels=sar_kernels(range_ref, azimuth_ref),
            inputs={"img": raw},
            dtype=np.complex128,
            array="img",
        ),
    ]


def value_digest(value: np.ndarray) -> str:
    """A content digest of one result array (dtype/shape/bytes)."""
    h = hashlib.sha256()
    h.update(str(value.dtype).encode())
    h.update(repr(value.shape).encode())
    h.update(np.ascontiguousarray(value).tobytes())
    return h.hexdigest()


def run_and_digest(session, w: dict) -> str:
    """Execute one request on a session and digest its result array."""
    result = session.run(
        w["source"],
        bindings=w["bindings"],
        kernels=w["kernels"],
        inputs=w["inputs"],
        dtype=w["dtype"],
    )
    return value_digest(result.value(w["array"]))
