"""Experiment F10/F11 (paper Fig. 10/11): the remapping graph.

Compiling the paper's running example must produce the seven-vertex graph
of Fig. 11 (four remapping statements + v_c + v_0 + v_e), with the zero-trip
loop edges and the use labels the paper lists.  The benchmark times the
full construction (Appendix B).
"""

from __future__ import annotations

from repro.ir.cfg import NodeKind, build_cfg
from repro.ir.effects import Use
from repro.lang import parse_program, resolve_program
from repro.mapping import ProcessorArrangement
from repro.remap import build_remapping_graph

FIG10 = """
subroutine remap(A, m)
  integer m, n, p
  real A(n,n), B(n,n), C(n,n)
  intent inout A
!hpf$ align with A :: B, C
!hpf$ dynamic A, B, C
!hpf$ distribute A(block, *)
  compute "init" writes B reads A
  if c1 then
!hpf$   redistribute A(cyclic, *)
    compute writes A, p reads A, B
  else
!hpf$   redistribute A(block, block)
    compute writes p reads A
  endif
  do i = 1, m
!hpf$   redistribute A(*, block)
    compute writes C reads A
!hpf$   redistribute A(block, *)
    compute writes A reads A, C
  enddo
end
"""


def test_fig10_remap_graph(benchmark):
    prog = resolve_program(
        parse_program(FIG10),
        bindings={"n": 64},
        default_processors=ProcessorArrangement("P", (2, 2)),
    )

    res = benchmark(lambda: build_remapping_graph(build_cfg(prog.get("remap")), prog))
    g = res.graph
    assert len(g.vertices) == 7
    remaps = sorted(
        (v for v in g.vertices.values() if v.kind is NodeKind.REMAP),
        key=lambda v: v.cfg_id,
    )
    v1, v2, v3, v4 = remaps
    assert (v1.U["a"], v1.U["b"], v1.U["c"]) == (Use.W, Use.R, Use.N)
    assert (v2.U["a"], v2.U["b"], v2.U["c"]) == (Use.R, Use.N, Use.N)
    assert (v3.U["a"], v3.U["c"]) == (Use.R, Use.W)
    assert (v4.U["a"], v4.U["c"]) == (Use.W, Use.R)
    # zero-trip loop edges to the exit vertex (paper's "1 to E" edges)
    assert res.cfg.exit in g.succs(v1.cfg_id, "a")
    assert res.cfg.exit in g.succs(v2.cfg_id, "a")
    benchmark.extra_info.update(
        {
            "vertices": len(g.vertices),
            "edges": len(g.edges),
            "versions_per_array": res.versions.count("a"),
        }
    )
