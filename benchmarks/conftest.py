"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's index: it
executes (or compiles) a program under different optimization levels,
asserts the *shape* of the paper's claim (who wins, by what factor), and
records the measured numbers in ``benchmark.extra_info`` so
``pytest benchmarks/ --benchmark-only`` prints a complete reproduction
record (transcribed into EXPERIMENTS.md).

Benchmarks that track a perf trajectory additionally emit machine-readable
results through the shared ``--json PATH`` flag (:func:`pytest_addoption`)
and the ``bench_json`` fixture: each benchmark names a default output file
(e.g. ``BENCH_schedule.json``) that ``--json`` overrides, so CI can collect
the numbers as artifacts.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import CompilerOptions, ExecutionEnv, Executor, Machine, compile_program


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        help="write machine-readable benchmark results to PATH "
        "(overrides each benchmark's default output file)",
    )


@pytest.fixture
def bench_json(request):
    """Write one benchmark's results as JSON; returns the path written.

    ``bench_json(default_path, payload)`` honours ``--json PATH`` when
    given, else writes to the benchmark's own default file.
    """

    def _write(default_path: str, payload) -> str:
        path = request.config.getoption("--json") or default_path
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    return _write


@pytest.fixture
def run_program():
    """Compile and execute a program; returns (result, machine, compiled)."""

    def _run(
        source,
        level: int = 3,
        sub: str | None = None,
        bindings: dict | None = None,
        conditions: dict | None = None,
        inputs: dict | None = None,
        kernels: dict | None = None,
        nprocs: int = 4,
        dtype=np.float64,
        memory_limit: int | None = None,
    ):
        compiled = compile_program(
            source,
            bindings=bindings,
            processors=nprocs,
            options=CompilerOptions(level=level),
        )
        name = sub or next(iter(compiled.subroutines))
        machine = Machine(compiled.processors, memory_limit=memory_limit)
        env = ExecutionEnv(
            conditions=conditions or {},
            bindings=bindings or {},
            inputs=inputs or {},
            kernels=kernels or {},
            dtype=dtype,
        )
        result = Executor(compiled, machine, env).run(name)
        return result, machine, compiled

    return _run


@pytest.fixture
def traffic(run_program):
    """Run at several levels, return {level: stats-snapshot}."""

    def _traffic(source, levels=(0, 3), **kw):
        out = {}
        for level in levels:
            _, machine, _ = run_program(source, level=level, **kw)
            out[level] = machine.stats.snapshot()
        return out

    return _traffic
