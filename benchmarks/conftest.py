"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's index: it
executes (or compiles) a program under different optimization levels,
asserts the *shape* of the paper's claim (who wins, by what factor), and
records the measured numbers in ``benchmark.extra_info`` so
``pytest benchmarks/ --benchmark-only`` prints a complete reproduction
record (transcribed into EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CompilerOptions, ExecutionEnv, Executor, Machine, compile_program


@pytest.fixture
def run_program():
    """Compile and execute a program; returns (result, machine, compiled)."""

    def _run(
        source,
        level: int = 3,
        sub: str | None = None,
        bindings: dict | None = None,
        conditions: dict | None = None,
        inputs: dict | None = None,
        kernels: dict | None = None,
        nprocs: int = 4,
        dtype=np.float64,
        memory_limit: int | None = None,
    ):
        compiled = compile_program(
            source,
            bindings=bindings,
            processors=nprocs,
            options=CompilerOptions(level=level),
        )
        name = sub or next(iter(compiled.subroutines))
        machine = Machine(compiled.processors, memory_limit=memory_limit)
        env = ExecutionEnv(
            conditions=conditions or {},
            bindings=bindings or {},
            inputs=inputs or {},
            kernels=kernels or {},
            dtype=dtype,
        )
        result = Executor(compiled, machine, env).run(name)
        return result, machine, compiled

    return _run


@pytest.fixture
def traffic(run_program):
    """Run at several levels, return {level: stats-snapshot}."""

    def _traffic(source, levels=(0, 3), **kw):
        out = {}
        for level in levels:
            _, machine, _ = run_program(source, level=level, **kw)
            out[level] = machine.stats.snapshot()
        return out

    return _traffic
