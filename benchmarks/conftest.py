"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's index: it
executes (or compiles) a program under different optimization levels,
asserts the *shape* of the paper's claim (who wins, by what factor), and
records the measured numbers in ``benchmark.extra_info`` so
``pytest benchmarks/ --benchmark-only`` prints a complete reproduction
record (transcribed into EXPERIMENTS.md).

Benchmarks that track a perf trajectory additionally emit machine-readable
results through the shared ``--json PATH`` flag (:func:`pytest_addoption`)
and the ``bench_json`` fixture: each benchmark names a default output file
(e.g. ``BENCH_schedule.json``) that ``--json`` overrides, so CI can collect
the numbers as artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro import CompilerOptions, ExecutionEnv, Executor, Machine, compile_program
from repro.obs import REGISTRY


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        help="write machine-readable benchmark results to PATH "
        "(overrides each benchmark's default output file)",
    )


def _publish_bench_values(bench: str, payload: dict) -> None:
    """Mirror a payload's numeric leaves into the ``repro.bench.value`` gauge.

    Top-level numeric scalars publish under ``case="-"``; entries of a
    ``results`` mapping publish one case per key, with nested dicts
    flattened to dotted metric names.  The registry snapshot embedded in
    the JSON output therefore carries the same headline numbers the
    payload does -- one schema for humans and machines.
    """

    def leaves(prefix: str, value, out: list[tuple[str, float]]) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            out.append((prefix, float(value)))
        elif isinstance(value, dict):
            for k, v in value.items():
                leaves(f"{prefix}.{k}" if prefix else str(k), v, out)

    def publish(case: str, tree) -> None:
        flat: list[tuple[str, float]] = []
        leaves("", tree, flat)
        for metric, value in flat:
            REGISTRY.gauge(
                "repro.bench.value",
                {"bench": bench, "case": case, "metric": metric},
            ).set(value)

    publish("-", {k: v for k, v in payload.items() if isinstance(v, (int, float))})
    results = payload.get("results")
    if isinstance(results, dict):
        for case, tree in results.items():
            publish(str(case), tree)


@pytest.fixture
def bench_json(request):
    """Write one benchmark's results as JSON; returns the path written.

    ``bench_json(default_path, payload)`` honours ``--json PATH`` when
    given, else writes to the benchmark's own default file.  Dict
    payloads additionally publish their headline numbers through the
    process-wide metrics registry (``repro.bench.value``) and embed a
    full registry snapshot under the ``"obs"`` key, so every BENCH json
    doubles as a metrics export.
    """

    def _write(default_path: str, payload) -> str:
        path = request.config.getoption("--json") or default_path
        if isinstance(payload, dict):
            _publish_bench_values(Path(default_path).stem, payload)
            payload.setdefault("obs", REGISTRY.snapshot())
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    return _write


@pytest.fixture
def run_program():
    """Compile and execute a program; returns (result, machine, compiled)."""

    def _run(
        source,
        level: int = 3,
        sub: str | None = None,
        bindings: dict | None = None,
        conditions: dict | None = None,
        inputs: dict | None = None,
        kernels: dict | None = None,
        nprocs: int = 4,
        dtype=np.float64,
        memory_limit: int | None = None,
    ):
        compiled = compile_program(
            source,
            bindings=bindings,
            processors=nprocs,
            options=CompilerOptions(level=level),
        )
        name = sub or next(iter(compiled.subroutines))
        machine = Machine(compiled.processors, memory_limit=memory_limit)
        env = ExecutionEnv(
            conditions=conditions or {},
            bindings=bindings or {},
            inputs=inputs or {},
            kernels=kernels or {},
            dtype=dtype,
        )
        result = Executor(compiled, machine, env).run(name)
        return result, machine, compiled

    return _run


@pytest.fixture
def traffic(run_program):
    """Run at several levels, return {level: stats-snapshot}."""

    def _traffic(source, levels=(0, 3), **kw):
        out = {}
        for level in levels:
            _, machine, _ = run_program(source, level=level, **kw)
            out[level] = machine.stats.snapshot()
        return out

    return _traffic
