"""Experiment Q2 (paper Sec. 1, ref. [10]): 2-D FFT via transpose remapping.

Correctness vs numpy.fft.fft2 and the corner-turn's exact communication:
P*(P-1) messages moving the (P-1)/P off-diagonal fraction of the matrix.
"""

from __future__ import annotations

import pytest

from repro.apps.fft2d import run_fft2d


@pytest.mark.parametrize("nprocs", [2, 4, 8])
def test_fft2d(benchmark, nprocs):
    n = 64
    r = benchmark(lambda: run_fft2d(n=n, nprocs=nprocs))
    assert r.correct
    total = n * n * 16  # complex128
    assert r.stats["messages"] == nprocs * (nprocs - 1)
    assert r.stats["bytes"] == total * (nprocs - 1) // nprocs
    benchmark.extra_info.update(
        {
            "n": n,
            "procs": nprocs,
            "max_error": r.max_error,
            "messages": r.stats["messages"],
            "bytes": r.stats["bytes"],
            "fraction_moved": r.stats["bytes"] / total,
        }
    )
