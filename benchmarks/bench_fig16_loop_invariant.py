"""Experiment F16/F17 (paper Fig. 16/17): loop-invariant remapping motion.

The paper's exact claim: the 2t dynamic remappings of Fig. 16 become 2
after sinking the trailing restore -- the loop-top remapping fires only at
the first iteration, later ones are skipped "just by an inexpensive check
of [the array's] status".
"""

from __future__ import annotations

import numpy as np

FIG16 = """
subroutine main(t)
  integer n, t
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute writes A
  do i = 1, t
!hpf$   redistribute A(cyclic)
    compute writes A reads A
!hpf$   redistribute A(block)
  enddo
  compute reads A
end
"""

N = 2048
T = 10


def _inputs():
    return {"a": np.ones(N)}


def test_fig16_loop_invariant(benchmark, run_program, traffic):
    t = traffic(FIG16, bindings={"n": N, "t": T}, inputs=_inputs())
    naive, opt = t[0], t[3]

    assert naive["remaps_performed"] == 2 * T
    assert opt["remaps_performed"] == 2
    assert opt["remaps_skipped_status"] == T - 1
    assert opt["bytes"] * T == naive["bytes"]

    benchmark(
        lambda: run_program(FIG16, level=3, bindings={"n": N, "t": T}, inputs=_inputs())
    )
    benchmark.extra_info.update(
        {
            "iterations": T,
            "naive_dynamic_remaps": naive["remaps_performed"],
            "optimized_dynamic_remaps": opt["remaps_performed"],
            "status_skips": opt["remaps_skipped_status"],
            "bytes_ratio": opt["bytes"] / naive["bytes"],
        }
    )
