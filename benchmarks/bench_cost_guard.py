"""Experiment CG (ROADMAP: close the seed-2558 open item).

Guarded vs. unguarded loop-invariant motion over a batch of random legal
programs: per seed, measure executed bytes at levels 0-3 with the cost
guard (the shipping pipeline) and at "unguarded level 3" (the legacy
legality-only motion, reproduced by applying the motion transform directly
and compiling the result at level 2).

The shape asserted: guarded level 3 never exceeds any lower level on any
seed -- the invariant the guard enforces by construction -- while the
unguarded heuristic loses to naive on at least one seed in the batch (the
documented seed-2558 counter-example is pinned into it).

``BENCH_COST_GUARD_SEEDS`` shrinks the batch for CI smoke runs.
"""

from __future__ import annotations

import os

import numpy as np

from repro import CompilerOptions, ExecutionEnv, Executor, Machine, compile_program
from repro.apps.workloads import random_environment, random_legal_subroutine
from repro.remap.motion import transform_program

N_SEEDS = int(os.environ.get("BENCH_COST_GUARD_SEEDS", "200"))


def _seeds() -> list[int]:
    meta = np.random.default_rng(1997)
    drawn = [int(s) for s in meta.integers(0, 10_000, size=max(0, N_SEEDS - 1))]
    return [2558, *drawn]  # always include the documented counter-example


def _run_bytes(program, conditions, inputs, level=None, options=None) -> int:
    options = options or CompilerOptions(level=level)
    compiled = compile_program(program, processors=4, options=options)
    machine = Machine(compiled.processors)
    env = ExecutionEnv(
        conditions=dict(conditions),
        inputs={k: v.copy() for k, v in inputs.items()},
    )
    name = next(iter(compiled.subroutines))
    Executor(compiled, machine, env).run(name)
    return machine.stats.bytes


def _measure_seed(seed: int) -> tuple[list[int], int]:
    rng = np.random.default_rng(seed)
    program = random_legal_subroutine(rng, n_arrays=2, length=5, depth=1)
    conditions, inputs = random_environment(rng, n_arrays=2)
    guarded = [
        _run_bytes(program, conditions, inputs, level=level) for level in (0, 1, 2, 3)
    ]
    # legacy legality-only motion: transform, then compile without the pass
    moved, _ = transform_program(program)
    unguarded = _run_bytes(moved, conditions, inputs, level=2)
    return guarded, unguarded


def test_cost_guard_monotone_across_seeds(benchmark):
    seeds = _seeds()
    guard_violations = 0
    unguarded_violations = 0
    guarded_total = unguarded_total = naive_total = 0
    rejected_wins = 0  # seeds where the guard's rejection mattered
    for seed in seeds:
        guarded, unguarded = _measure_seed(seed)
        naive_total += guarded[0]
        guarded_total += guarded[3]
        unguarded_total += unguarded
        if not (guarded[3] <= guarded[2] <= guarded[1] <= guarded[0]):
            guard_violations += 1
        if unguarded > guarded[0]:
            unguarded_violations += 1
        if unguarded > guarded[3]:
            rejected_wins += 1

    # the guard's invariant: monotone on every seed, no exceptions
    assert guard_violations == 0
    # the legacy heuristic demonstrably loses without the guard (seed 2558)
    assert unguarded_violations >= 1
    assert guarded_total <= unguarded_total

    benchmark(lambda: _measure_seed(2558))
    benchmark.extra_info.update(
        {
            "seeds": len(seeds),
            "guard_violations": guard_violations,
            "unguarded_violations": unguarded_violations,
            "seeds_where_guard_beats_unguarded": rejected_wins,
            "naive_bytes_total": naive_total,
            "guarded_l3_bytes_total": guarded_total,
            "unguarded_l3_bytes_total": unguarded_total,
        }
    )
