"""Experiment F5/F6 (paper Fig. 5/6): legality checking.

Fig. 5's flow-dependent reference must be rejected; Fig. 6's ambiguous
*state* (resolved before any reference) must compile.  The benchmark times
the full legality analysis (construction) on the accepted program.
"""

from __future__ import annotations

import pytest

from repro import compile_program
from repro.errors import AmbiguousMappingError, MultipleLeavingMappingsError

FIG5 = """
subroutine main()
  integer n
  real A(n, n)
!hpf$ template T1(n, n)
!hpf$ template T2(n, n)
!hpf$ align A with T1
!hpf$ dynamic A
!hpf$ distribute T1(block, *)
!hpf$ distribute T2(block, *)
  compute reads A
  if c then
!hpf$   realign A with T2
    compute reads A
  endif
!hpf$ redistribute T2(cyclic, *)
  compute reads A
end
"""

FIG6 = """
subroutine main()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute reads A
  if c then
!hpf$   redistribute A(cyclic)
    compute reads A
  endif
!hpf$ redistribute A(cyclic)
  compute reads A
end
"""


def test_fig5_rejected_fig6_accepted(benchmark):
    with pytest.raises((AmbiguousMappingError, MultipleLeavingMappingsError)):
        compile_program(FIG5, bindings={"n": 64}, processors=4)

    compiled = benchmark(
        lambda: compile_program(FIG6, bindings={"n": 64}, processors=4)
    )
    sub = compiled.get("main")
    # the pinning redistribute is reached by both mappings
    multi = [
        v
        for v in sub.graph.vertices.values()
        if len(v.R.get("a", ())) == 2
    ]
    benchmark.extra_info.update(
        {
            "fig5": "rejected (restriction 1)",
            "fig6": "accepted; pin vertex reached by 2 mappings",
            "fig6_pin_vertices": len(multi),
        }
    )
    assert len(multi) == 1
