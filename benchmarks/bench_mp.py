"""Experiment MP: real multi-process exchanges vs the cost model.

A contended redistribution family (1-D block<->cyclic(3), every rank
talking to every other) runs on the real forked-worker backend
(:mod:`repro.runtime.mpbackend`) under each schedule policy.  Per policy
the benchmark records:

* the **measured makespan** on the one-port clock
  (``ExecutionResult.mp.port_seconds``: per-message measured costs
  composed phase by phase with the cost model's own formula -- honest on
  a time-sliced CI runner where raw wall time mostly measures the OS
  scheduler), median over ``BENCH_MP_REPS`` runs;
* the **modeled prediction** for the same traffic
  (``machine.phase_seconds``, the phase clock the simulator charges --
  identical message lists by the backend's differential contract);
* their quotient, the **calibration ratio**, which
  ``check_regression.py`` gates against the committed
  ``benchmarks/baselines/BENCH_mp.json``.

The shape asserted at measurement time (and re-gated from the recorded
numbers): round-robin's measured makespan never exceeds naive's on this
contended family, aggregation never increases messages nor changes
bytes, and all policies deliver bit-identical values.

``BENCH_MP_PROCS`` / ``BENCH_MP_N`` / ``BENCH_MP_TRIPS`` /
``BENCH_MP_REPS`` scale the experiment for CI smoke runs.
"""

from __future__ import annotations

import os
import statistics

import numpy as np
import pytest

from repro import CompilerOptions, ExecutionEnv, Machine, compile_program
from repro.runtime.mpbackend import MPBackend
from repro.spmd.transport import fork_available

NPROCS = int(os.environ.get("BENCH_MP_PROCS", "8"))
N = int(os.environ.get("BENCH_MP_N", "4096"))
TRIPS = int(os.environ.get("BENCH_MP_TRIPS", "4"))
REPS = int(os.environ.get("BENCH_MP_REPS", "5"))
POLICIES = ("naive", "round-robin", "aggregate")

#: block<->cyclic(3) moves nearly every element between ranks twice per
#: trip -- the all-pairs, contended pattern phasing exists for
MP_BENCH_SRC = """
subroutine mp_bench()
  integer n, t
  real a(n)
!hpf$ dynamic a
!hpf$ distribute a(block)
  compute defines a
  do i = 1, t
!hpf$   redistribute a(cyclic(3))
    compute writes a reads a
!hpf$   redistribute a(block)
  enddo
  compute reads a
end
"""


def _measure(backend: MPBackend, policy: str) -> dict:
    bindings = {"n": N, "t": TRIPS}
    compiled = compile_program(
        MP_BENCH_SRC,
        bindings=bindings,
        processors=NPROCS,
        options=CompilerOptions(level=3, schedule=policy),
    )
    ports, walls = [], []
    predicted = None
    report = None
    value = None
    for _ in range(REPS):
        machine = Machine(compiled.processors)
        env = ExecutionEnv(conditions={}, bindings=bindings)
        result = backend.execute(compiled, machine=machine, env=env)
        ports.append(result.mp.port_seconds)
        walls.append(result.mp.wall_seconds)
        # deterministic across repetitions: the modeled phase clock and
        # the transport's traffic accounting
        assert predicted is None or predicted == machine.phase_seconds
        predicted = machine.phase_seconds
        report = result.mp
        value = result.value("a")
    port = statistics.median(ports)
    return {
        "port_us": port * 1e6,
        "wall_us": statistics.median(walls) * 1e6,
        "predicted_us": predicted * 1e6,
        "calibration": port / predicted if predicted > 0 else float("nan"),
        "messages": report.messages,
        "bytes": report.bytes_moved,
        "phases": report.phases,
    }, value


@pytest.mark.skipif(not fork_available(), reason="mp backend requires fork")
def test_mp_transport_vs_cost_model(benchmark, bench_json):
    results: dict[str, dict] = {}
    values: dict[str, np.ndarray] = {}
    with MPBackend(NPROCS) as backend:
        for policy in POLICIES:
            results[policy], values[policy] = _measure(backend, policy)

        path = bench_json("BENCH_mp.json", {
            "experiment": "mp-transport",
            "pattern": f"block<->cyclic(3)@P{NPROCS}",
            "nprocs": NPROCS,
            "n": N,
            "trips": TRIPS,
            "repetitions": REPS,
            "results": results,
            "rr_vs_naive_port": (
                results["naive"]["port_us"] / results["round-robin"]["port_us"]
                if results["round-robin"]["port_us"] > 0 else 1.0
            ),
        })

        # the headline: contention-free phasing wins on the *measured*
        # clock, not just the modeled one (recorded first, then asserted,
        # so regression commits still upload their numbers)
        assert (
            results["round-robin"]["port_us"] <= results["naive"]["port_us"]
        ), results
        assert results["aggregate"]["messages"] <= results["round-robin"]["messages"]
        assert results["aggregate"]["bytes"] == results["round-robin"]["bytes"]
        for policy in POLICIES[1:]:
            assert np.array_equal(values[policy], values[POLICIES[0]]), policy
        for policy in POLICIES:
            r = results[policy]
            assert r["calibration"] > 0 and np.isfinite(r["calibration"]), policy

        benchmark(lambda: _measure(backend, "round-robin"))
    benchmark.extra_info.update(
        {
            "json_path": path,
            "nprocs": NPROCS,
            "rr_vs_naive_port": round(
                results["naive"]["port_us"]
                / max(results["round-robin"]["port_us"], 1e-12),
                3,
            ),
            "rr_calibration": round(results["round-robin"]["calibration"], 3),
        }
    )
