"""Experiment F8 (paper Fig. 8/22/23): call-site translation.

An implicit argument remapping becomes caller-side explicit remappings:
``v_b`` copies the actual into a dummy-mapped version before the call,
``v_a`` restores after, and the intent attribute supplies the liveness
information (Fig. 22's tables).
"""

from __future__ import annotations

import numpy as np

from repro import compile_program
from repro.ir.cfg import NodeKind
from repro.ir.effects import Use

FIG8 = """
subroutine callee(A)
  integer n
  real A(n)
  intent in A
!hpf$ distribute A(block)
  compute "use_a" reads A
end

subroutine main()
  integer n
  real B(n)
!hpf$ dynamic B
!hpf$ distribute B(cyclic)
  compute writes B
  call callee(B)
  compute reads B
end
"""


def test_fig8_call_translation(benchmark, run_program):
    compiled = benchmark(lambda: compile_program(FIG8, bindings={"n": 64}, processors=4))
    sub = compiled.get("main")
    g = sub.graph
    vb = next(v for v in g.vertices.values() if v.kind is NodeKind.CALL_BEFORE)
    va = next(v for v in g.vertices.values() if v.kind is NodeKind.CALL_AFTER)
    # the explicit remapping of Fig. 8: cyclic actual -> block dummy
    assert vb.R["b"] == {0} and vb.L["b"] == 1
    # intent(in): the callee only reads -> U(v_b) = R, and the restore back
    # is live-copy-free at run time
    assert vb.U["b"] is Use.R
    assert va.L["b"] == 0

    result, machine, _ = run_program(
        FIG8,
        sub="main",
        level=3,
        bindings={"n": 64},
        inputs={"b": np.arange(64.0)},
        kernels={"use_a": lambda ctx: ctx.value("a")},
    )
    assert machine.stats.remaps_performed == 1  # copy in; restore reuses live
    assert machine.stats.remaps_skipped_live == 1
    benchmark.extra_info.update(
        {
            "vb": "B{0} --R--> B_1 (dummy mapping)",
            "va": "restore to B_0, free via live copy",
            "runtime_copies": machine.stats.remaps_performed,
        }
    )
