"""CI smoke assertion: the warm workload produces a well-formed trace.

Run as a script (``python benchmarks/obs_smoke.py [--trace PATH]
[--prometheus PATH]``).  It executes the mixed four-app workload twice
through a :class:`~repro.service.CompileService` with tracing enabled --
the cold batch compiles, the warm batch is pure cache hits -- then
exports:

* the Chrome ``trace_event`` dump of both batches (default
  ``TRACE_workload.json``), loadable in Perfetto / ``chrome://tracing``
  for a flamegraph of the service;
* the full metrics registry as a Prometheus text snapshot (default
  ``PROM_workload.prom``).

The smoke assertions exit non-zero (failing the CI leg) unless:

1. :func:`repro.obs.validate_spans` finds no structural problems --
   every span has nonnegative duration, every parent exists, shares the
   child's trace ID and contains the child's interval;
2. every request produced a ``service.request`` root span and at least
   one warm request's trace reaches the executor (``service.run`` /
   ``executor.run`` spans nested under it);
3. every executed scheduled remap was drift-clean (predicted ==
   observed bytes and messages).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_service import NPROCS, _mixed_requests

from repro import CompilerOptions, CompileService
from repro.obs import REGISTRY, TRACER, top_spans, validate_spans


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", default="TRACE_workload.json")
    parser.add_argument("--prometheus", default="PROM_workload.prom")
    args = parser.parse_args(argv)

    TRACER.enabled = True
    TRACER.clear()
    requests = _mixed_requests(io_seconds=0.0, repeat=2)
    options = CompilerOptions(schedule="round-robin")  # drift-checked remaps
    with CompileService(processors=NPROCS, workers=4, shards=8, options=options) as svc:
        cold = svc.run_batch(requests)
        warm = svc.run_batch(requests)
    failures = [str(r.error) for r in cold + warm if r.error is not None]

    trace = TRACER.write_chrome_trace(args.trace)
    Path(args.prometheus).write_text(REGISTRY.prometheus_text())
    events = trace["traceEvents"]
    roots = [e for e in events if e["name"] == "service.request"]
    runs = [e for e in events if e["name"] == "executor.run"]

    problems = validate_spans(trace)
    if failures:
        problems.append(f"{len(failures)} request(s) errored: {failures[:3]}")
    if len(roots) != len(cold) + len(warm):
        problems.append(
            f"expected {len(cold) + len(warm)} service.request root spans, "
            f"got {len(roots)}"
        )
    if not runs:
        problems.append("no executor.run span reached the trace")
    drift = {
        m["name"]: m["value"]
        for m in REGISTRY.snapshot()["metrics"]
        if m["name"].startswith("repro.drift.") and m["kind"] == "counter"
    }
    if drift.get("repro.drift.remaps_checked", 0) <= 0:
        problems.append("no scheduled remap was drift-checked")
    for key in ("byte_mismatches", "message_mismatches"):
        if drift.get(f"repro.drift.{key}", 0) != 0:
            problems.append(f"drift monitor saw {key}: {drift[f'repro.drift.{key}']}")

    report = {
        "trace_path": args.trace,
        "prometheus_path": args.prometheus,
        "spans": len(events),
        "request_roots": len(roots),
        "executor_runs": len(runs),
        "drift": drift,
        "top_spans": top_spans(trace, 8),
        "problems": problems,
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    if problems:
        print(f"obs-smoke FAILED: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
