"""Experiment Q4 (paper Sec. 1, ref. [17]): SAR pipeline with corner turn.

Two matched-filtering stages separated by a transpose remapping, plus
multi-look passes.  Proprietary radar data is substituted by synthetic
point targets (same code path); validated against a sequential reference.
"""

from __future__ import annotations

import numpy as np

from repro.apps.sar import run_sar


def test_sar(benchmark):
    r = benchmark(lambda: run_sar(n=64, looks=2, nprocs=4))
    assert r.correct
    # exactly one corner turn
    assert r.stats["remaps_performed"] == 1
    mag = np.abs(r.value)
    benchmark.extra_info.update(
        {
            "max_error": r.max_error,
            "corner_turn_messages": r.stats["messages"],
            "bytes": r.stats["bytes"],
            "dynamic_range": float(mag.max() / np.median(mag)),
        }
    )


def test_sar_naive_vs_optimized(benchmark):
    r0 = run_sar(n=64, looks=2, nprocs=4, level=0)
    r3 = run_sar(n=64, looks=2, nprocs=4, level=3)
    assert r0.correct and r3.correct
    assert r3.stats["bytes"] <= r0.stats["bytes"]
    benchmark(lambda: run_sar(n=64, looks=2, nprocs=4, level=0))
    benchmark.extra_info.update(
        {"naive_bytes": r0.stats["bytes"], "optimized_bytes": r3.stats["bytes"]}
    )
