"""Experiment F1 (paper Fig. 1): direct remapping.

A realign immediately followed by a redistribute changes both levels of
A's mapping.  Naively that is TWO copies through an unused intermediate
mapping; the paper's removal makes it ONE direct copy.  We measure the
remapping traffic of both compilations.
"""

from __future__ import annotations

import numpy as np

FIG1 = """
subroutine main()
  integer n
  real A(n, n), B(n, n)
!hpf$ align with B :: A
!hpf$ dynamic A, B
!hpf$ distribute B(block, *)
  compute reads A, B
!hpf$ realign A(i, j) with B(j, i)
!hpf$ redistribute B(cyclic, *)
  compute reads A, B
end
"""

N = 64


def _inputs():
    return {
        "a": np.arange(N * N, dtype=float).reshape(N, N),
        "b": np.ones((N, N)),
    }


def test_fig1_direct_remapping(benchmark, run_program, traffic):
    t = traffic(FIG1, bindings={"n": N}, inputs=_inputs())
    naive, opt = t[0], t[3]

    # naive remaps A twice (realign, then redistribute); optimized once
    assert naive["remaps_performed"] >= opt["remaps_performed"] + 1
    assert opt["bytes"] < naive["bytes"]

    result = benchmark(
        lambda: run_program(FIG1, level=3, bindings={"n": N}, inputs=_inputs())
    )
    benchmark.extra_info.update(
        {
            "naive_remaps": naive["remaps_performed"],
            "optimized_remaps": opt["remaps_performed"],
            "naive_bytes": naive["bytes"],
            "optimized_bytes": opt["bytes"],
        }
    )
