"""Experiment F2 (paper Fig. 2): useless remappings of C.

C is remapped with its template and remapped straight back without being
referenced: both copies are useless.  After Appendix C the optimized run
moves ZERO bytes for C.
"""

from __future__ import annotations

import numpy as np

FIG2 = """
subroutine main()
  integer n
  real B(n, n), C(n, n)
!hpf$ template T(n, n)
!hpf$ align B with T
!hpf$ align C(i, j) with T(j, i)
!hpf$ dynamic B, C
!hpf$ distribute T(block, *)
  compute reads B, C
!hpf$ redistribute T(cyclic, *)
  compute reads B
!hpf$ redistribute T(block, *)
  compute reads B, C
end
"""

N = 64


def _inputs():
    return {"b": np.ones((N, N)), "c": np.arange(N * N, dtype=float).reshape(N, N)}


def test_fig2_useless_remaps_removed(benchmark, run_program, traffic):
    t = traffic(FIG2, bindings={"n": N}, inputs=_inputs())
    naive, opt = t[0], t[3]

    _, m3, compiled = run_program(FIG2, level=3, bindings={"n": N}, inputs=_inputs())
    per_array = m3.stats.per_array_bytes
    c_bytes = sum(v for k, v in per_array.items() if k.startswith("c_"))
    assert c_bytes == 0, "both C remappings must vanish"
    assert naive["remaps_performed"] == 4  # B and C, out and back
    # B must go out (1 copy); coming back it reuses its still-live original
    # copy (B was only read while cyclic), so the optimized run pays ONE copy
    assert opt["remaps_performed"] == 1
    assert opt["remaps_skipped_live"] == 1

    benchmark(lambda: run_program(FIG2, level=3, bindings={"n": N}, inputs=_inputs()))
    benchmark.extra_info.update(
        {
            "naive_remaps": naive["remaps_performed"],
            "optimized_remaps": opt["remaps_performed"],
            "c_bytes_optimized": c_bytes,
            "naive_bytes": naive["bytes"],
            "optimized_bytes": opt["bytes"],
        }
    )
