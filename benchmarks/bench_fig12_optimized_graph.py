"""Experiment F12 (paper Fig. 12): the optimized remapping graph.

After useless-remapping removal on the Fig. 10 example: A may be used with
all four mappings, B only with two, C only with the loop mappings -- so
some instances (the paper names B_2, C_0/C_1) are never instantiated, and
C's instantiation "can be delayed and may never occur if the loop body is
never executed".

Uses the session API: one :class:`CompilerSession` serves every compile and
run in this file, so the artifact is built once and re-served from cache.
"""

from __future__ import annotations

import numpy as np

from repro import CompilerOptions, CompilerSession

FIG10 = """
subroutine remap(A, m)
  integer m, n, p
  real A(n,n), B(n,n), C(n,n)
  intent inout A
!hpf$ align with A :: B, C
!hpf$ dynamic A, B, C
!hpf$ distribute A(block, *)
  compute "init" writes B reads A
  if c1 then
!hpf$   redistribute A(cyclic, *)
    compute writes A, p reads A, B
  else
!hpf$   redistribute A(block, block)
    compute writes p reads A
  endif
  do i = 1, m
!hpf$   redistribute A(*, block)
    compute writes C reads A
!hpf$   redistribute A(block, *)
    compute writes A reads A, C
  enddo
end
"""

N = 32

SESSION = CompilerSession(processors=4)


def _compile_cold():
    # a fresh session per call: the benchmark times real fig12 compilation,
    # not a cache hit (bench_compile_cache.py covers warm-path latency)
    return CompilerSession(processors=4).compile(
        FIG10, bindings={"n": N}, options=CompilerOptions(level=3)
    )


def test_fig12_optimized_graph(benchmark):
    compiled = benchmark(_compile_cold)
    g = compiled.get("remap").graph
    # paper: A used with all mappings, B with two, C with the loop mappings
    # (version numbering is textual: 0 initial, 1 cyclic, 2 block-block,
    # 3 column-block; our loop-bottom mapping equals the initial one, so C's
    # used set is {0, 3} where the paper's transliteration reads {2, 3})
    assert g.used_versions("a") == {0, 1, 2, 3}
    assert g.used_versions("b") == {0, 1}
    assert g.used_versions("c") == {0, 3}
    assert g.removed_count() > 0
    # the shared session re-serves repeat compiles from cache, same artifact
    first = SESSION.compile(FIG10, bindings={"n": N})
    assert SESSION.compile(FIG10, bindings={"n": N}) is first
    assert SESSION.stats["hits"] > 0
    benchmark.extra_info.update(
        {
            "used_a": sorted(g.used_versions("a")),
            "used_b": sorted(g.used_versions("b")),
            "used_c": sorted(g.used_versions("c")),
            "slots_removed": g.removed_count(),
            "cache_hit_rate": SESSION.stats["hit_rate"],
        }
    )


def test_fig12_c_never_instantiated_when_loop_empty(benchmark):
    def run(m):
        result = SESSION.run(
            FIG10,
            "remap",
            bindings={"n": N, "m": m},
            conditions={"c1": True},
            inputs={"a": np.ones((N, N))},
        )
        return result.machine

    m0 = run(0)
    # zero-trip loop: no C traffic at all (instantiation delayed forever)
    assert all(not k.startswith("c_") for k in m0.stats.per_array_bytes)
    m2 = benchmark(lambda: run(2))
    benchmark.extra_info.update(
        {
            "c_bytes_zero_trip": 0,
            "c_bytes_two_iterations": sum(
                v for k, v in m2.stats.per_array_bytes.items() if k.startswith("c_")
            ),
        }
    )
