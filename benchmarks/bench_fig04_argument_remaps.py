"""Experiment F4 (paper Fig. 4): useless argument remappings.

Three consecutive calls with CYCLIC dummies on a BLOCK actual: naive pays
copy-in + copy-back per call (6 copies); optimized pays one copy in and --
because intent(in) keeps the original BLOCK copy live -- a free copy back.
"""

from __future__ import annotations

import numpy as np

FIG4 = """
subroutine foo(X)
  integer n
  real X(n)
  intent in X
!hpf$ distribute X(cyclic)
  compute "use_x" reads X
end

subroutine bla(X)
  integer n
  real X(n)
  intent in X
!hpf$ distribute X(cyclic)
  compute "use_x" reads X
end

subroutine main()
  integer n
  real Y(n)
!hpf$ dynamic Y
!hpf$ distribute Y(block)
  compute writes Y
  call foo(Y)
  call foo(Y)
  call bla(Y)
  compute reads Y
end
"""

N = 4096
KERNELS = {"use_x": lambda ctx: ctx.value("x")}


def _inputs():
    return {"y": np.arange(float(N))}


def test_fig4_argument_remaps(benchmark, run_program, traffic):
    t = traffic(
        FIG4, sub="main", bindings={"n": N}, inputs=_inputs(), kernels=KERNELS
    )
    naive, opt = t[0], t[3]

    assert naive["remaps_performed"] == 6  # in+out per call
    assert opt["remaps_performed"] == 1  # one copy in; copy back reuses live
    assert opt["bytes"] * 6 == naive["bytes"]

    benchmark(
        lambda: run_program(
            FIG4, sub="main", level=3, bindings={"n": N}, inputs=_inputs(), kernels=KERNELS
        )
    )
    benchmark.extra_info.update(
        {
            "naive_remaps": naive["remaps_performed"],
            "optimized_remaps": opt["remaps_performed"],
            "naive_bytes": naive["bytes"],
            "optimized_bytes": opt["bytes"],
        }
    )
