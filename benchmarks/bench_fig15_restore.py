"""Experiment F15/F18 (paper Fig. 15/18): reaching-status save/restore.

A call whose argument arrives with a flow-dependent mapping is legal (the
explicit v_b remapping resolves the ambiguity before the call); Fig. 18's
save/restore re-establishes the reaching mapping afterwards.  At level 0
the restore really executes; with optimizations, restriction 1 makes an
unused ambiguous restore removable, and the next remapping sources directly
from the dummy mapping.
"""

from __future__ import annotations

import numpy as np

FIG15 = """
subroutine foo(X)
  integer n
  real X(n)
  intent inout X
!hpf$ distribute X(block(8))
  compute "touch" writes X
end

subroutine main()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(cyclic)
  compute writes A
  if c then
!hpf$   redistribute A(cyclic(2))
    compute reads A
  endif
  call foo(A)
!hpf$ redistribute A(block)
  compute reads A
end
"""

N = 32
KERNELS = {"touch": lambda ctx: ctx.set_value("x", ctx.value("x") * 2)}


def _inputs():
    return {"a": np.arange(float(N))}


def test_fig15_restore(benchmark, run_program):
    data = np.arange(float(N))
    expected = (0.5 * data + 1.0) * 2

    results = {}
    for level in (0, 3):
        for c in (True, False):
            r, m, _ = run_program(
                FIG15,
                sub="main",
                level=level,
                bindings={"n": N},
                conditions={"c": c},
                inputs=_inputs(),
                kernels=KERNELS,
            )
            assert np.allclose(r.value("a"), expected)
            results[(level, c)] = m.stats.remaps_performed

    # the naive restore costs an extra copy on every path
    assert results[(0, True)] > results[(3, True)]
    assert results[(0, False)] > results[(3, False)]

    benchmark(
        lambda: run_program(
            FIG15,
            sub="main",
            level=3,
            bindings={"n": N},
            conditions={"c": True},
            inputs=_inputs(),
            kernels=KERNELS,
        )
    )
    benchmark.extra_info.update(
        {f"remaps_level{l}_c{c}": v for (l, c), v in results.items()}
    )
