"""Experiment SERVICE: concurrent compile-and-run throughput vs workers.

The service-level benchmark trajectory: a mixed four-app workload (adi,
fft2d, lu, sar -- the paper's Sec. 1 application classes) is submitted to
a :class:`~repro.service.CompileService` as batches, cold (empty shard
caches, every distinct artifact compiles once under single-flight) and
warm (every request is a shard cache hit), across worker counts 1/2/4/8.

Every request carries a modeled transport time (``io_seconds``, default
20 ms, the serving analogue of the simulated machine's communication
clock -- this repo's "hardware" is simulated end to end).  Like socket
I/O in a real server it sleeps off-GIL and overlaps across workers, so
worker scaling measures the service's concurrency plumbing: a lock held
across a pipeline run or an executor that serializes on shared state
would flatten the curve.  The pure-compute portion is GIL-bound Python
and is reported separately (``compute_only`` numbers, io=0) so the
single-core serial floor is recorded honestly rather than hidden.

Shape asserted:

* warm 4-worker throughput >= 2x warm single-worker throughput;
* every result (cold and warm, any worker count) is byte-identical to
  serial execution of the same request;
* warm batches are pure cache hits (zero pipeline passes run).

Results are written machine-readably to ``BENCH_service.json`` (or the
shared ``--json PATH`` flag).  ``BENCH_SERVICE_REPEAT`` scales the batch
(requests = 4 * repeat), ``BENCH_SERVICE_IO_MS`` the modeled transport,
``BENCH_SERVICE_WORKERS`` the sweep.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import CompileRequest, CompileService
from repro.obs import TRACER, metrics_disabled
from repro.apps.adi import adi_kernels, build_adi_program
from repro.apps.fft2d import build_fft2d_program, fft2d_kernels
from repro.apps.lu import build_lu_program, lu_kernels
from repro.apps.sar import (
    build_sar_program,
    chirp,
    sar_kernels,
    synthesize_raw,
    synthetic_scene,
)

REPEAT = int(os.environ.get("BENCH_SERVICE_REPEAT", "6"))
IO_MS = float(os.environ.get("BENCH_SERVICE_IO_MS", "20"))
WORKERS = tuple(
    int(w) for w in os.environ.get("BENCH_SERVICE_WORKERS", "1,2,4,8").split(",")
)
NPROCS = 4


def _mixed_requests(io_seconds: float, repeat: int = REPEAT) -> list[CompileRequest]:
    """``4 * repeat`` interleaved requests over the four paper apps.

    Programs, kernels and inputs are built once and shared across the
    repeats -- exactly the repeated-traffic shape a compile service sees.
    """
    rng = np.random.default_rng(0)

    n = 16
    u0 = rng.normal(size=(n, n))
    adi = CompileRequest(
        build_adi_program(n),
        bindings={"t": 2},
        kernels=adi_kernels(alpha=0.1),
        inputs={"u": u0},
        io_seconds=io_seconds,
    )
    x0 = rng.normal(size=(n, n))
    fft = CompileRequest(
        build_fft2d_program(n),
        kernels=fft2d_kernels(),
        inputs={"x": x0},
        dtype=np.complex128,
        io_seconds=io_seconds,
    )
    lu_prog, steps = build_lu_program(n, block=8)
    a0 = rng.normal(size=(n, n)) + n * np.eye(n)
    lu = CompileRequest(
        lu_prog,
        bindings={"steps": steps},
        kernels=lu_kernels(n, block=8),
        inputs={"a": a0},
        io_seconds=io_seconds,
    )
    range_ref, azimuth_ref = chirp(n, rate=7.0), chirp(n, rate=3.0)
    raw = synthesize_raw(synthetic_scene(n, seed=0), range_ref, azimuth_ref)
    sar = CompileRequest(
        build_sar_program(n),
        bindings={"looks": 1},
        kernels=sar_kernels(range_ref, azimuth_ref),
        inputs={"img": raw},
        dtype=np.complex128,
        io_seconds=io_seconds,
    )

    out: list[CompileRequest] = []
    for _ in range(repeat):
        out += [adi, fft, lu, sar]
    return out


#: the result array of each app's entry subroutine, in request order
ARRAYS = ("u", "x", "a", "img")


def _values(results) -> list[np.ndarray]:
    return [r.value(ARRAYS[i % 4]) for i, r in enumerate(results)]


def _timed_batch(svc: CompileService, requests) -> tuple[list, float]:
    t0 = time.perf_counter()
    results = svc.run_batch(requests)
    return results, time.perf_counter() - t0


def _sweep(io_seconds: float) -> dict[str, dict]:
    requests = _mixed_requests(io_seconds)
    out: dict[str, dict] = {}
    for w in WORKERS:
        with CompileService(processors=NPROCS, workers=w, shards=8) as svc:
            cold, cold_s = _timed_batch(svc, requests)
            passes_cold = svc.pool.stats["passes_run"]
            warm, warm_s = _timed_batch(svc, requests)
            assert all(r.ok for r in cold) and all(r.ok for r in warm)
            # warm batches are pure cache hits: zero new pipeline passes
            assert svc.pool.stats["passes_run"] == passes_cold
            assert all(r.cached or r.deduped for r in warm)
            snap = svc.stats.snapshot()
            out[str(w)] = {
                "cold_seconds": cold_s,
                "warm_seconds": warm_s,
                "cold_rps": len(requests) / cold_s,
                "warm_rps": len(requests) / warm_s,
                "p50_latency_ms": snap["p50_latency_ms"],
                "p99_latency_ms": snap["p99_latency_ms"],
                "max_queue_depth": snap["max_queue_depth"],
                "dedup_saves": snap["dedup_saves"],
                "shard_hit_rate": svc.pool.stats["hit_rate"],
                "values_cold": _values(cold),
                "values_warm": _values(warm),
            }
    return out


def _overhead_sweep(rounds: int = 15) -> dict[str, float]:
    """Price the instrumentation on the warm serial compute-only batch.

    Runs the same warm batch under three modes -- metrics publication
    disabled (the true baseline), the default (metrics on, tracing off),
    and tracing enabled -- and reports each mode's cost as the *minimum
    across rounds of the within-round ratio* against that same round's
    disabled run.  Within a round the three modes run back to back under
    near-identical machine state, so the ratio cancels thermal and
    scheduling drift; taking the minimum across rounds then discards the
    rounds a background process perturbed (noise only ever inflates a
    ratio in expectation, so the floor is the honest estimate of the
    intrinsic cost -- the same argument as min-of-N timing).  A real
    regression shifts *every* round's ratio and survives the minimum;
    for a false alarm every one of the ``rounds`` independent ratios
    must be inflated past the ceiling at once.  The probe batch is
    serial (one worker) and compute-only (no modeled I/O), so sleeps and
    thread scheduling cannot contribute.  The gate in
    ``check_regression.py`` asserts metrics cost < 1% and tracing < 5%
    of warm throughput.
    """
    requests = _mixed_requests(io_seconds=0.0)

    def run_off(svc):
        with metrics_disabled():
            return _timed_batch(svc, requests)[1]

    def run_metrics(svc):
        return _timed_batch(svc, requests)[1]

    def run_traced(svc):
        prev = TRACER.enabled
        TRACER.enabled = True
        try:
            return _timed_batch(svc, requests)[1]
        finally:
            TRACER.enabled = prev
            TRACER.clear()

    modes = [("off", run_off), ("metrics", run_metrics), ("traced", run_traced)]
    times: dict[str, list[float]] = {name: [] for name, _ in modes}
    with CompileService(processors=NPROCS, workers=1, shards=8) as svc:
        # warm the shard caches AND the machine (CPU clocks, allocator,
        # numpy) before timing anything -- otherwise whichever mode runs
        # first pays the warm-up and the ratios measure run order
        svc.run_batch(requests)
        svc.run_batch(requests)
        for i in range(rounds):
            for name, run in modes[i % 3:] + modes[: i % 3]:  # rotate order
                times[name].append(run(svc))

    metrics_ratio = min(m / o for m, o in zip(times["metrics"], times["off"]))
    traced_ratio = min(t / o for t, o in zip(times["traced"], times["off"]))
    return {
        "batch_requests": len(requests),
        "rounds": rounds,
        "off_seconds": min(times["off"]),
        "metrics_seconds": min(times["metrics"]),
        "traced_seconds": min(times["traced"]),
        "metrics_overhead": metrics_ratio - 1.0,
        "tracing_overhead": traced_ratio - 1.0,
    }


def test_service_throughput_vs_workers(benchmark, bench_json):
    requests = _mixed_requests(io_seconds=0.0)

    # serial ground truth: one worker, no modeled I/O, fresh cache
    with CompileService(processors=NPROCS, workers=1, shards=8) as serial_svc:
        serial = serial_svc.run_batch(requests)
        assert all(r.ok for r in serial)
        reference = _values(serial)

    sweep = _sweep(io_seconds=IO_MS * 1e-3)
    compute_only = _sweep(io_seconds=0.0)

    # byte-identical results vs serial execution, for every worker count,
    # cold and warm, with and without modeled I/O
    for results in (sweep, compute_only):
        for w, r in results.items():
            for kind in ("values_cold", "values_warm"):
                for i, value in enumerate(r[kind]):
                    assert np.array_equal(value, reference[i]), (
                        f"request {i} diverged from serial "
                        f"(workers={w}, {kind}, io={results is sweep})"
                    )
            # values verified; drop the arrays before JSON serialization
            r.pop("values_cold")
            r.pop("values_warm")

    # the headline scaling claim: warm 4-worker >= 2x warm single-worker
    speedup = sweep["4"]["warm_rps"] / sweep["1"]["warm_rps"]
    assert speedup >= 2.0, (
        f"warm 4-worker throughput only {speedup:.2f}x single-worker "
        f"({sweep['4']['warm_rps']:.1f} vs {sweep['1']['warm_rps']:.1f} rps)"
    )

    path = bench_json(
        "BENCH_service.json",
        {
            "experiment": "service-throughput",
            "apps": ["adi", "fft2d", "lu", "sar"],
            "requests": len(requests),
            "workers": list(WORKERS),
            "io_ms": IO_MS,
            "processors": NPROCS,
            "warm_speedup_4_vs_1": speedup,
            "results": sweep,
            "compute_only": compute_only,
            "overhead": _overhead_sweep(),
        },
    )

    # the timed kernel: one warm batch at 4 workers with modeled I/O
    warm_reqs = _mixed_requests(io_seconds=IO_MS * 1e-3)
    with CompileService(processors=NPROCS, workers=4, shards=8) as svc:
        svc.run_batch(warm_reqs)
        benchmark(lambda: svc.run_batch(warm_reqs))

    benchmark.extra_info.update(
        {
            "json_path": path,
            "requests": len(requests),
            "warm_speedup_4_vs_1": round(speedup, 3),
            "warm_rps_1": round(sweep["1"]["warm_rps"], 1),
            "warm_rps_4": round(sweep["4"]["warm_rps"], 1),
            "compute_only_rps_1": round(compute_only["1"]["warm_rps"], 1),
        }
    )
