"""Experiment F7 (paper Fig. 7): dynamic -> static translation.

The compiler must version a dynamically remapped array into statically
mapped copies and rewrite every reference to the right copy.  We verify the
version table and reference annotations match Fig. 7's expansion, timing
the compilation.
"""

from __future__ import annotations

from repro import compile_program
from repro.mapping import DistKind

FIG7 = """
subroutine main()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(cyclic)
  compute "one" reads A
!hpf$ redistribute A(block)
  compute "two" reads A
end
"""


def test_fig7_translation(benchmark):
    compiled = benchmark(lambda: compile_program(FIG7, bindings={"n": 64}, processors=4))
    sub = compiled.get("main")
    # two statically mapped versions: A_0 = cyclic, A_1 = block
    assert sub.versions.count("a") == 2
    m0, m1 = sub.versions.versions("a")
    assert m0.dim_maps[0].kind is DistKind.CYCLIC
    assert m1.dim_maps[0].kind is DistKind.BLOCK
    # references rewritten to the proper copy
    anns = sorted(v["a"] for v in sub.stmt_versions.values())
    assert anns == [0, 1]
    benchmark.extra_info.update(
        {"versions": [m0.short(), m1.short()], "reference_versions": anns}
    )
