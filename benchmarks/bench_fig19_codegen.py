"""Experiment F19/F20 (paper Fig. 19/20): copy code generation.

The generated runtime code for Fig. 13's final remapping must have exactly
Fig. 20's guarded structure: status test, conditional allocation, liveness
test, one guarded copy per possible reaching version, live flag and status
updates.  Dead copies (U = D) must generate no copy statement at all.
"""

from __future__ import annotations

from repro import PassManager
from repro.remap.codegen import RemapOp, render_op

# the explicit pipeline API: level 3's pass set, assembled by name
PIPELINE = PassManager.pipeline_for_level(3)

FIG13 = """
subroutine main()
  integer n
  real A(n, n)
!hpf$ dynamic A
!hpf$ distribute A(block, *)
  compute reads A
  if c then
!hpf$   redistribute A(cyclic, *)
    compute writes A
  else
!hpf$   redistribute A(cyclic(2), *)
    compute reads A
  endif
!hpf$ redistribute A(block, *)
  compute reads A
end
"""

DEAD = """
subroutine main()
  integer n
  real A(n)
!hpf$ dynamic A
!hpf$ distribute A(block)
  compute reads A
!hpf$ redistribute A(cyclic)
  compute defines A
  compute reads A
end
"""


def test_fig19_codegen(benchmark):
    compiled = benchmark(
        lambda: PIPELINE.compile(FIG13, bindings={"n": 16}, processors=4)
    )
    assert compiled.trace.counter("codegen", "ops") > 0
    code = compiled.get("main").code
    final = [
        op
        for op in code.all_ops()
        if isinstance(op, RemapOp) and op.leaving == 0 and len(op.reaching) == 2
    ]
    assert len(final) == 1
    text = "\n".join(render_op(final[0]))
    # Fig. 20's structure, version-for-version
    assert "if status(a) != 0" in text
    assert "allocate a_0 if needed" in text
    assert "if not live(a_0)" in text
    assert "if status(a) == 1: a_0 = a_1" in text
    assert "if status(a) == 2: a_0 = a_2" in text
    assert "live(a_0) = true" in text
    assert "status(a) = 0" in text
    benchmark.extra_info["generated"] = text.replace("\n", " | ")


def test_fig19_dead_copy_no_communication(benchmark):
    compiled = benchmark(
        lambda: PIPELINE.compile(DEAD, bindings={"n": 16}, processors=4)
    )
    code = compiled.get("main").code
    remaps = [op for op in code.all_ops() if isinstance(op, RemapOp)]
    assert len(remaps) == 1
    text = "\n".join(render_op(remaps[0]))
    # U = D: allocated, never copied
    assert "no copy" in text
    assert "a_1 = a_0" not in text
    benchmark.extra_info["generated"] = text.replace("\n", " | ")
