"""SAR-style signal processing with a corner turn (paper Sec. 1, ref. [17]).

Range compression (per-row matched filtering), corner-turn remapping,
azimuth compression (per-column matched filtering), plus multi-look passes.
Synthetic point targets stand in for proprietary radar data; the code path
is the published pipeline's.

Run::

    python examples/sar_pipeline.py
"""

import numpy as np

from repro.apps.sar import run_sar


def main() -> None:
    r = run_sar(n=128, looks=2, nprocs=4)
    mag = np.abs(r.value)
    print(f"image {mag.shape}, focused correctly: {r.correct} (max err {r.max_error:.2e})")
    print(f"peak/median dynamic range: {mag.max() / np.median(mag):.1f}x")
    print(f"corner-turn remappings: {r.stats['remaps_performed']}")
    print(f"messages: {r.stats['messages']}, bytes: {r.stats['bytes']}")
    print(f"simulated time: {r.elapsed * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
