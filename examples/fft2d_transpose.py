"""2-D FFT with a transpose remapping (paper Sec. 1, reference [10]).

Row FFTs under ``(block, *)``, one ``REDISTRIBUTE`` corner turn, column
FFTs under ``(*, block)``.  The only communication is the remapping the
compiler generated; the example reports it and validates the transform
against ``numpy.fft.fft2``.

Run::

    python examples/fft2d_transpose.py
"""

from repro.apps.fft2d import run_fft2d


def main() -> None:
    print(f"{'n':>6} {'procs':>6} {'ok':>5} {'messages':>9} {'bytes moved':>12} {'of total':>9}")
    for n in (32, 64, 128):
        for p in (2, 4, 8):
            r = run_fft2d(n=n, nprocs=p)
            total = n * n * 16  # complex128 bytes
            print(
                f"{n:>6} {p:>6} {str(r.correct):>5} {r.stats['messages']:>9} "
                f"{r.stats['bytes']:>12} {r.stats['bytes'] / total:>8.1%}"
            )
    print(
        "\nThe corner turn is an all-to-all: P*(P-1) messages moving the\n"
        "(P-1)/P fraction of the matrix that changes owner -- exactly the\n"
        "redistribution cost model of Gupta et al. [10] cited by the paper."
    )


if __name__ == "__main__":
    main()
