"""Quickstart: compile the paper's running example (Fig. 10) and execute it.

Run::

    python examples/quickstart.py

The session API is three lines: create a :class:`CompilerSession`, call
``session.run``, read the result.  The session memoizes compiled artifacts,
so the repeated runs below compile exactly once per optimization setting
(see the cache stats it prints).  The full pipeline is still inspectable:
mini-HPF source -> remapping graph (Fig. 11) -> dataflow optimizations
(Fig. 12) -> generated copy code (Fig. 20 style) -> execution on a
simulated 4-processor machine with message accounting.
"""

import numpy as np

from repro import CompilerOptions, CompilerSession, compilation_report

FIG10 = """
subroutine remap(A, m)
  integer m, n, p
  real A(n,n), B(n,n), C(n,n)
  intent inout A
!hpf$ align with A :: B, C
!hpf$ dynamic A, B, C
!hpf$ distribute A(block, *)
  compute "init" writes B reads A
  if c1 then
!hpf$   redistribute A(cyclic, *)
    compute writes A, p reads A, B
  else
!hpf$   redistribute A(block, block)
    compute writes p reads A
  endif
  do i = 1, m
!hpf$   redistribute A(*, block)
    compute writes C reads A
!hpf$   redistribute A(block, *)
    compute writes A reads A, C
  enddo
end
"""


def main() -> None:
    n, steps = 16, 3

    # the three-line quickstart
    session = CompilerSession(processors=4)
    result = session.run(
        FIG10,
        bindings={"n": n, "m": steps},
        conditions={"c1": True},
        inputs={"a": np.arange(n * n, dtype=float).reshape(n, n)},
    )
    print(f"A restored to its declared mapping: status={result.status('a')}")
    print()

    # the compiled artifact (cached from the run above: note the hit)
    compiled = session.compile(FIG10, bindings={"n": n, "m": steps})
    print(compilation_report(compiled))
    print(compiled.trace.summary())
    print()

    for level, label in [(0, "naive"), (3, "optimized")]:
        r = session.run(
            FIG10,
            bindings={"n": n, "m": steps},
            conditions={"c1": True},
            inputs={"a": np.arange(n * n, dtype=float).reshape(n, n)},
            options=CompilerOptions(level=level),
        )
        s = r.machine.stats
        print(
            f"{label:>9}: remaps performed={s.remaps_performed:3d} "
            f"skipped={s.remaps_skipped_live + s.remaps_skipped_status:3d} "
            f"messages={s.messages:4d} bytes={s.bytes:6d} "
            f"simulated time={r.machine.elapsed * 1e3:7.3f} ms"
        )
    print()
    print(f"session cache: {session.stats}")


if __name__ == "__main__":
    main()
