"""Quickstart: compile the paper's running example (Fig. 10) and execute it.

Run::

    python examples/quickstart.py

Shows the full pipeline: mini-HPF source -> remapping graph (Fig. 11) ->
dataflow optimizations (Fig. 12) -> generated copy code (Fig. 20 style) ->
execution on a simulated 4-processor machine with message accounting.
"""

import numpy as np

from repro import (
    CompilerOptions,
    ExecutionEnv,
    Executor,
    Machine,
    compilation_report,
    compile_program,
)

FIG10 = """
subroutine remap(A, m)
  integer m, n, p
  real A(n,n), B(n,n), C(n,n)
  intent inout A
!hpf$ align with A :: B, C
!hpf$ dynamic A, B, C
!hpf$ distribute A(block, *)
  compute "init" writes B reads A
  if c1 then
!hpf$   redistribute A(cyclic, *)
    compute writes A, p reads A, B
  else
!hpf$   redistribute A(block, block)
    compute writes p reads A
  endif
  do i = 1, m
!hpf$   redistribute A(*, block)
    compute writes C reads A
!hpf$   redistribute A(block, *)
    compute writes A reads A, C
  enddo
end
"""


def main() -> None:
    n, steps = 16, 3
    compiled = compile_program(
        FIG10, bindings={"n": n}, processors=4, options=CompilerOptions(level=3)
    )

    print(compilation_report(compiled))
    print()

    for level, label in [(0, "naive"), (3, "optimized")]:
        cp = compile_program(
            FIG10, bindings={"n": n}, processors=4, options=CompilerOptions(level=level)
        )
        machine = Machine(cp.processors)
        env = ExecutionEnv(
            conditions={"c1": True},
            bindings={"m": steps},
            inputs={"a": np.arange(n * n, dtype=float).reshape(n, n)},
        )
        result = Executor(cp, machine, env).run("remap")
        s = machine.stats
        print(
            f"{label:>9}: remaps performed={s.remaps_performed:3d} "
            f"skipped={s.remaps_skipped_live + s.remaps_skipped_status:3d} "
            f"messages={s.messages:4d} bytes={s.bytes:6d} "
            f"simulated time={machine.elapsed * 1e3:7.3f} ms"
        )
        print(f"           A restored to its declared mapping: status={result.status('a')}")


if __name__ == "__main__":
    main()
