"""Interprocedural remapping avoidance (paper Fig. 4).

Three consecutive calls pass a BLOCK-distributed array to subroutines whose
dummies want CYCLIC.  A naive compiler remaps on every entry and exit (six
copies); the paper's optimizations keep the argument CYCLIC across the call
sequence and remap exactly twice.

Run::

    python examples/argument_remapping.py
"""

import numpy as np

from repro import CompilerOptions, ExecutionEnv, Executor, Machine, compile_program

FIG4 = """
subroutine foo(X)
  integer n
  real X(n)
  intent in X
!hpf$ distribute X(cyclic)
  compute "use_x" reads X
end

subroutine bla(X)
  integer n
  real X(n)
  intent in X
!hpf$ distribute X(cyclic)
  compute "use_x" reads X
end

subroutine main()
  integer n
  real Y(n)
!hpf$ dynamic Y
!hpf$ distribute Y(block)
  compute writes Y
  call foo(Y)
  call foo(Y)
  call bla(Y)
  compute reads Y
end
"""


def main() -> None:
    n = 1024
    for level, label in [(0, "naive"), (3, "optimized")]:
        compiled = compile_program(
            FIG4, bindings={"n": n}, processors=8, options=CompilerOptions(level=level)
        )
        machine = Machine(compiled.processors)
        env = ExecutionEnv(
            inputs={"y": np.arange(float(n))},
            kernels={"use_x": lambda ctx: ctx.value("x")},
        )
        Executor(compiled, machine, env).run("main")
        s = machine.stats
        print(
            f"{label:>9}: argument remappings performed={s.remaps_performed} "
            f"(skipped={s.remaps_skipped_live + s.remaps_skipped_status}), "
            f"bytes={s.bytes}"
        )
    print(
        "\nPaper Fig. 4: 'both back and forth remappings could be avoided\n"
        "between the two calls'.  The optimized run pays ONE copy in, stays\n"
        "CYCLIC across all three calls, and even the final copy back is free:\n"
        "intent(in) guarantees the callees never modified Y, so the original\n"
        "BLOCK copy is still live and is simply reused (Sec. 4.2)."
    )


if __name__ == "__main__":
    main()
