"""Serving compiled programs: the concurrent service layer in action.

Run::

    python examples/service_demo.py

A :class:`~repro.service.CompileService` fronts the compiler for
request-time traffic: a batch of mixed requests (two sources, repeated
with different runtime inputs) executes on a bounded worker pool over a
digest-sharded artifact cache.  The demo shows the three service
mechanisms at work:

* the first occurrence of each source compiles (shard miss), repeats hit;
* identical requests arriving *concurrently* while the artifact is still
  compiling share one pipeline run (single-flight dedup);
* the stats snapshot is the whole telemetry surface: throughput, p50/p99
  latency, shard hit rates, dedup saves, queue depth.
"""

import numpy as np

from repro import CompileService

FIG10 = """
subroutine remap(A, m)
  integer m, n, p
  real A(n,n), B(n,n), C(n,n)
  intent inout A
!hpf$ align with A :: B, C
!hpf$ dynamic A, B, C
!hpf$ distribute A(block, *)
  compute "init" writes B reads A
  if c1 then
!hpf$   redistribute A(cyclic, *)
    compute writes A, p reads A, B
  else
!hpf$   redistribute A(block, block)
    compute writes p reads A
  endif
  do i = 1, m
!hpf$   redistribute A(*, block)
    compute writes C reads A
!hpf$   redistribute A(block, *)
    compute writes A reads A, C
  enddo
end
"""

TRANSPOSE = """
subroutine transpose(m)
  integer m, n
  real X(n,n)
!hpf$ dynamic X
!hpf$ distribute X(block, *)
  compute "rows" writes X
  do i = 1, m
!hpf$   redistribute X(*, block)
    compute writes X reads X
!hpf$   redistribute X(block, *)
    compute writes X reads X
  enddo
end
"""


def main() -> None:
    n = 16
    with CompileService(processors=4, workers=4, shards=8) as svc:
        requests = []
        for i in range(12):
            if i % 3 == 0:
                requests.append(
                    {
                        "source": TRANSPOSE,
                        "bindings": {"n": n, "m": 1 + i % 2},
                    }
                )
            else:
                requests.append(
                    {
                        "source": FIG10,
                        "bindings": {"n": n, "m": 2},
                        "conditions": {"c1": i % 2 == 0},
                        "inputs": {"a": np.full((n, n), float(i))},
                    }
                )

        results = svc.run_batch(requests)

        print("per-request outcomes:")
        for r in results:
            how = (
                "dedup-wait" if r.deduped
                else "cache-hit" if r.cached
                else "compiled"
            )
            print(
                f"  #{r.index:2d} {how:10s} "
                f"compile={r.compile_seconds * 1e3:6.2f} ms "
                f"run={r.run_seconds * 1e3:6.2f} ms "
                f"total={r.seconds * 1e3:6.2f} ms"
            )

        print("\nservice stats:")
        for k, v in svc.stats.snapshot().items():
            print(f"  {k}: {v:.3f}" if isinstance(v, float) else f"  {k}: {v}")

        print("\nsession pool (sharded artifact cache):")
        pool = svc.pool.stats
        for k in ("shards", "hits", "misses", "hit_rate", "shard_hit_rates"):
            print(f"  {k}: {pool[k]}")

        # the run results are ordinary ExecutionResults
        a = results[1].value("a")
        print(f"\nresult #1: a[0,:4] = {a[0, :4]}  (status={results[1].result.status('a')})")


if __name__ == "__main__":
    main()
