"""ADI: the paper's canonical dynamic-remapping workload (Sec. 1, Fig. 10).

Alternating tridiagonal sweeps along rows and columns; each direction is
only SPMD-local under its own distribution, so the solution array is
remapped twice per time step.  Validates against a sequential NumPy
reference and reports remapping traffic per optimization level.

Run::

    python examples/adi_sweeps.py
"""

from repro.apps.adi import run_adi


def main() -> None:
    n, steps, nprocs = 64, 6, 4
    print(f"ADI {n}x{n}, {steps} steps, {nprocs} processors")
    print(f"{'level':>6} {'ok':>4} {'max err':>10} {'remaps':>7} {'bytes':>10} {'sim time':>10}")
    for level in (0, 1, 2, 3):
        r = run_adi(n=n, steps=steps, nprocs=nprocs, level=level)
        print(
            f"{level:>6} {str(r.correct):>4} {r.max_error:>10.2e} "
            f"{r.stats['remaps_performed']:>7} {r.stats['bytes']:>10} "
            f"{r.elapsed * 1e3:>8.2f}ms"
        )
    print(
        "\nADI is the honest negative control: every transpose is essential\n"
        "(u is rewritten under each mapping), so the optimizations can only\n"
        "shave the redundant first loop-top remapping -- and must not hurt."
    )


if __name__ == "__main__":
    main()
